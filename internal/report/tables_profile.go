package report

import (
	"context"
	"fmt"

	"repro/internal/dtype"
	"repro/internal/eval"
	"repro/internal/fusion"
	"repro/internal/kb"
	"repro/internal/world"
)

// Table11Row is one class's large-scale profiling result.
type Table11Row struct {
	Class            string
	TotalRows        int
	ExistingEntities int
	MatchedInstances int
	MatchingRatio    float64
	NewEntities      int
	NewFacts         int
	IncEntities      float64 // relative increase vs KB instances
	IncFacts         float64 // relative increase vs KB facts
	EntityAccuracy   float64
	FactAccuracy     float64
}

// Table11Data reproduces the §5 large-scale profiling (paper Table 11):
// the full pipeline over every corpus table matched to a class. Where the
// paper evaluates a stratified 50-entity sample manually, we evaluate all
// returned entities against the world's generation provenance.
func (s *Suite) Table11Data(ctx context.Context) ([]Table11Row, error) {
	var out []Table11Row
	for _, class := range kb.EvalClasses() {
		run, err := s.FullRun(ctx, class)
		if err != nil {
			return nil, err
		}
		row := Table11Row{Class: kb.ClassShortName(class)}
		for _, tid := range run.TableIDs {
			row.TotalRows += s.Corpus.Table(tid).NumRows()
		}
		existing, instances := run.ExistingEntities()
		row.ExistingEntities = len(existing)
		uniq := make(map[kb.InstanceID]bool)
		for _, iid := range instances {
			uniq[iid] = true
		}
		row.MatchedInstances = len(uniq)
		if row.MatchedInstances > 0 {
			row.MatchingRatio = float64(row.ExistingEntities) / float64(row.MatchedInstances)
		}
		newEnts := run.NewEntities()
		row.NewEntities = len(newEnts)
		for _, e := range newEnts {
			row.NewFacts += len(e.Facts)
		}
		prof := s.World.KB.ProfileClass(class)
		if prof.Instances > 0 {
			row.IncEntities = float64(row.NewEntities) / float64(prof.Instances)
		}
		if prof.Facts > 0 {
			row.IncFacts = float64(row.NewFacts) / float64(prof.Facts)
		}
		row.EntityAccuracy = s.newEntityAccuracy(newEnts)
		row.FactAccuracy = s.newFactAccuracy(newEnts)
		out = append(out, row)
	}
	return out, nil
}

// Table11 renders Table11Data.
func (s *Suite) Table11(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title: "Table 11: Large-scale profiling (full corpus run per class)",
		Headers: []string{"Class", "Total Rows", "Existing", "Matched KB", "Ratio",
			"New Entities", "New Facts", "N.Ent Acc", "N.Facts Acc"},
	}
	rows, err := s.Table11Data(ctx)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.Add(r.Class, r.TotalRows, r.ExistingEntities, r.MatchedInstances,
			r.MatchingRatio,
			fmt.Sprintf("%d (+%.0f%%)", r.NewEntities, 100*r.IncEntities),
			fmt.Sprintf("%d (+%.0f%%)", r.NewFacts, 100*r.IncFacts),
			r.EntityAccuracy, r.FactAccuracy)
	}
	return t, nil
}

// worldEntityOf maps a produced entity back to the world entity the
// majority of its rows were generated from (nil for junk/mixed entities).
func (s *Suite) worldEntityOf(e *fusion.Entity) *world.Entity {
	counts := make(map[int]int)
	for _, r := range e.Rows {
		t := s.Corpus.Table(r.Ref.Table)
		if t == nil || t.Truth == nil || r.Ref.Row >= len(t.Truth.RowEntity) {
			continue
		}
		uid := t.Truth.RowEntity[r.Ref.Row]
		if uid >= 0 {
			counts[uid]++
		}
	}
	best, bestN := -1, 0
	for uid, n := range counts {
		if n > bestN || (n == bestN && best >= 0 && uid < best) {
			best, bestN = uid, n
		}
	}
	if best < 0 || bestN*2 <= len(e.Rows) {
		return nil
	}
	return s.World.Entities[best]
}

// newEntityAccuracy is the fraction of returned new entities that describe
// a world entity genuinely absent from the KB.
func (s *Suite) newEntityAccuracy(newEnts []*fusion.Entity) float64 {
	if len(newEnts) == 0 {
		return 0
	}
	correct := 0
	for _, e := range newEnts {
		if we := s.worldEntityOf(e); we != nil && !we.InKB {
			correct++
		}
	}
	return float64(correct) / float64(len(newEnts))
}

// newFactAccuracy is the fraction of the new entities' facts that agree
// with the world truth of the entity they describe.
func (s *Suite) newFactAccuracy(newEnts []*fusion.Entity) float64 {
	th := dtype.DefaultThresholds()
	return eval.FactAccuracy(newEnts, func(e *fusion.Entity) map[string]dtype.Value {
		we := s.worldEntityOf(e)
		if we == nil {
			return nil
		}
		out := make(map[string]dtype.Value, len(we.Truth))
		for pid, v := range we.Truth {
			out[string(pid)] = v
		}
		return out
	}, th)
}

// Table12 reports the property densities of the new entities returned by
// the full run (paper Table 12).
func (s *Suite) Table12(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title:   "Table 12: Property densities for new entities (full run)",
		Headers: []string{"Class", "Property", "Facts", "Density"},
	}
	for _, class := range kb.EvalClasses() {
		run, err := s.FullRun(ctx, class)
		if err != nil {
			return nil, err
		}
		newEnts := run.NewEntities()
		counts := make(map[kb.PropertyID]int)
		for _, e := range newEnts {
			for pid := range e.Facts {
				counts[pid]++
			}
		}
		for _, prop := range s.World.KB.Schema(class) {
			density := 0.0
			if len(newEnts) > 0 {
				density = float64(counts[prop.ID]) / float64(len(newEnts))
			}
			t.Add(kb.ClassShortName(class), string(prop.ID), counts[prop.ID], pct(density))
		}
	}
	return t, nil
}

// RankedData computes the §6 set-expansion comparison: entities returned
// as new are ranked by their distance to the closest existing instance and
// scored with MAP@256, P@5, and P@20, averaged over the classes.
func (s *Suite) RankedData(ctx context.Context) (eval.RankedScores, error) {
	var maps, p5s, p20s []float64
	for _, class := range kb.EvalClasses() {
		run, err := s.GoldRun(ctx, class)
		if err != nil {
			return eval.RankedScores{}, err
		}
		results := entityResults(run)
		correct := make([]bool, len(run.Entities))
		for i, e := range run.Entities {
			we := s.worldEntityOf(e)
			correct[i] = we != nil && !we.InKB
		}
		rs := eval.EvaluateRanked(results, correct, 256)
		maps = append(maps, rs.MAP)
		p5s = append(p5s, rs.P5)
		p20s = append(p20s, rs.P20)
	}
	return eval.RankedScores{MAP: avg(maps), P5: avg(p5s), P20: avg(p20s), CutK: 256}, nil
}

// Table13 renders the ranked evaluation.
func (s *Suite) Table13(ctx context.Context) (*TextTable, error) {
	rs, err := s.RankedData(ctx)
	if err != nil {
		return nil, err
	}
	t := &TextTable{
		Title:   "Ranked evaluation (§6 set expansion comparison, cut-off 256)",
		Headers: []string{"MAP@256", "P@5", "P@20"},
	}
	t.Add(rs.MAP, rs.P5, rs.P20)
	return t, nil
}
