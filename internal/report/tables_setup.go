package report

import (
	"context"

	"repro/internal/kb"
)

// Table1 reports the number of instances and facts per class (paper
// Table 1).
func (s *Suite) Table1(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title:   "Table 1: Number of instances and facts for selected classes",
		Headers: []string{"Class", "Instances", "Facts"},
	}
	for _, class := range kb.EvalClasses() {
		p := s.World.KB.ProfileClass(class)
		t.Add(kb.ClassShortName(class), p.Instances, p.Facts)
	}
	return t, nil
}

// Table2 reports the per-property fact counts and densities (paper
// Table 2).
func (s *Suite) Table2(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title:   "Table 2: Number of facts and property densities",
		Headers: []string{"Class", "Property", "Facts", "Density"},
	}
	for _, class := range kb.EvalClasses() {
		for _, p := range s.World.KB.ProfileProperties(class) {
			t.Add(kb.ClassShortName(class), string(p.Property), p.Facts, pct(p.Density))
		}
	}
	return t, nil
}

// Table3 reports the corpus characteristics (paper Table 3).
func (s *Suite) Table3(ctx context.Context) (*TextTable, error) {
	st := s.Corpus.Stats()
	t := &TextTable{
		Title:   "Table 3: Characteristics of the web table corpus",
		Headers: []string{"", "Average", "Median", "Min", "Max"},
	}
	t.Add("Rows", st.RowsAvg, st.RowsMedian, st.RowsMin, st.RowsMax)
	t.Add("Columns", st.ColsAvg, st.ColsMedian, st.ColsMin, st.ColsMax)
	return t, nil
}

// Table4 reports, per class, the number of matched tables and the matched
// and unmatched value counts (paper Table 4). A value is "matched" when its
// row was matched to an existing KB instance and its column to a property.
func (s *Suite) Table4(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title:   "Table 4: Tables and value correspondences per class",
		Headers: []string{"Class", "Tables", "VMatched", "VUnmatched"},
	}
	byClass, err := s.TablesByClass(ctx)
	if err != nil {
		return nil, err
	}
	for _, class := range kb.EvalClasses() {
		out, err := s.FullRun(ctx, class)
		if err != nil {
			return nil, err
		}
		matched, unmatched := 0, 0
		for _, tid := range out.TableIDs {
			tbl := s.Corpus.Table(tid)
			mapping := out.Mapping[tid]
			for r := 0; r < tbl.NumRows(); r++ {
				ref := rowRef(tid, r)
				_, rowMatched := out.RowInstance[ref]
				for c := 0; c < tbl.NumCols(); c++ {
					if c == tbl.LabelCol || tbl.Cell(r, c) == "" {
						continue
					}
					if _, colMapped := mapping[c]; colMapped && rowMatched {
						matched++
					} else {
						unmatched++
					}
				}
			}
		}
		t.Add(kb.ClassShortName(class), len(byClass[class]), matched, unmatched)
	}
	return t, nil
}

// Table5 reports the gold standard overview (paper Table 5).
func (s *Suite) Table5(ctx context.Context) (*TextTable, error) {
	t := &TextTable{
		Title: "Table 5: Overview of the gold standard",
		Headers: []string{"Class", "Tables", "Attributes", "Rows",
			"Existing", "New", "Matched Values", "Value Groups", "Correct Present"},
	}
	for _, class := range kb.EvalClasses() {
		st := s.Golds[class].Stats(s.Corpus)
		t.Add(kb.ClassShortName(class), st.Tables, st.Attributes, st.Rows,
			st.ExistingClusters, st.NewClusters, st.MatchedValues,
			st.ValueGroups, st.CorrectValuePresent)
	}
	return t, nil
}
