package serve

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU over rendered response bodies, keyed on
// the KB version plus a canonical request key. Keying on kb.Version means
// entries never need explicit invalidation: every KB mutation (ingest
// write-back, snapshot load) bumps the version, later requests form new
// keys, and the stale generation ages out through normal LRU eviction.
// Hot lookups therefore skip retrieval entirely between KB mutations.
type lruCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	items  map[cacheKey]*list.Element
	hits   uint64
	misses uint64
	// perEndpoint breaks hits/misses down by the endpoint tag the
	// handlers pass to get, so /v1/stats can show which read path a
	// cache actually serves (the search index work of this repo is
	// invisible in an aggregate counter once lookups dominate).
	perEndpoint map[string]*endpointCounts
}

// endpointCounts is the per-endpoint slice of the hit/miss counters.
type endpointCounts struct {
	hits   uint64
	misses uint64
}

type cacheKey struct {
	version uint64
	key     string
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

// newLRUCache returns a cache holding up to capacity entries; a
// non-positive capacity disables caching (every get misses, put is a
// no-op), which the benchmarks use to measure the uncached path.
func newLRUCache(capacity int) *lruCache {
	c := &lruCache{cap: capacity}
	if capacity > 0 {
		c.ll = list.New()
		c.items = make(map[cacheKey]*list.Element, capacity)
		c.perEndpoint = make(map[string]*endpointCounts, 4)
	}
	return c
}

// get returns the cached body for (version, key) and whether it was
// present, promoting a hit to most-recently-used. endpoint tags the
// calling read path for the per-endpoint hit/miss breakdown.
func (c *lruCache) get(endpoint string, version uint64, key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ec := c.perEndpoint[endpoint]
	if ec == nil {
		ec = &endpointCounts{}
		c.perEndpoint[endpoint] = ec
	}
	el, ok := c.items[cacheKey{version, key}]
	if !ok {
		c.misses++
		ec.misses++
		return nil, false
	}
	c.hits++
	ec.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under (version, key), evicting the least-recently-used
// entry when full. The caller must not mutate body afterwards.
func (c *lruCache) put(version uint64, key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	ck := cacheKey{version, key}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[ck]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.items[ck] = c.ll.PushFront(&cacheEntry{key: ck, body: body})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
}

// stats returns cumulative hit/miss counts and the current entry count.
func (c *lruCache) stats() (hits, misses uint64, entries int) {
	if c.cap <= 0 {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// endpointStats returns a copy of the per-endpoint hit/miss counts.
func (c *lruCache) endpointStats() map[string]endpointCounts {
	if c.cap <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]endpointCounts, len(c.perEndpoint))
	for ep, ec := range c.perEndpoint {
		out[ep] = *ec
	}
	return out
}
