package serve

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded LRU over rendered response bodies, keyed on
// the KB version plus a canonical request key. Keying on kb.Version means
// entries never need explicit invalidation: every KB mutation (ingest
// write-back, snapshot load) bumps the version, later requests form new
// keys, and the stale generation ages out through normal LRU eviction.
// Hot lookups therefore skip retrieval entirely between KB mutations.
type lruCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	items  map[cacheKey]*list.Element
	hits   uint64
	misses uint64
}

type cacheKey struct {
	version uint64
	key     string
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

// newLRUCache returns a cache holding up to capacity entries; a
// non-positive capacity disables caching (every get misses, put is a
// no-op), which the benchmarks use to measure the uncached path.
func newLRUCache(capacity int) *lruCache {
	c := &lruCache{cap: capacity}
	if capacity > 0 {
		c.ll = list.New()
		c.items = make(map[cacheKey]*list.Element, capacity)
	}
	return c
}

// get returns the cached body for (version, key) and whether it was
// present, promoting a hit to most-recently-used.
func (c *lruCache) get(version uint64, key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[cacheKey{version, key}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under (version, key), evicting the least-recently-used
// entry when full. The caller must not mutate body afterwards.
func (c *lruCache) put(version uint64, key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	ck := cacheKey{version, key}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[ck]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.items[ck] = c.ll.PushFront(&cacheEntry{key: ck, body: body})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
}

// stats returns cumulative hit/miss counts and the current entry count.
func (c *lruCache) stats() (hits, misses uint64, entries int) {
	if c.cap <= 0 {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
