package serve

import (
	"bytes"
	"testing"
)

func TestLRUCacheVersionKeying(t *testing.T) {
	c := newLRUCache(4)
	c.put(1, "a", []byte("v1"))
	if got, ok := c.get("test", 1, "a"); !ok || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("get(1,a) = %q, %v", got, ok)
	}
	// A newer KB version never sees the old generation's entry.
	if _, ok := c.get("test", 2, "a"); ok {
		t.Fatal("version 2 served a version-1 body")
	}
	c.put(2, "a", []byte("v2"))
	if got, _ := c.get("test", 2, "a"); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("get(2,a) = %q", got)
	}
	// The old entry is still addressable until evicted.
	if got, _ := c.get("test", 1, "a"); !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("get(1,a) after new version = %q", got)
	}
	hits, misses, entries := c.stats()
	if hits != 3 || misses != 1 || entries != 2 {
		t.Errorf("stats = %d hits, %d misses, %d entries", hits, misses, entries)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put(1, "a", []byte("a"))
	c.put(1, "b", []byte("b"))
	c.get("test", 1, "a") // promote a
	c.put(1, "c", []byte("c"))
	if _, ok := c.get("test", 1, "b"); ok {
		t.Error("least-recently-used entry b survived eviction")
	}
	if _, ok := c.get("test", 1, "a"); !ok {
		t.Error("promoted entry a was evicted")
	}
	if _, ok := c.get("test", 1, "c"); !ok {
		t.Error("new entry c missing")
	}
	// Overwriting an existing key must not grow the cache.
	c.put(1, "a", []byte("a2"))
	if _, _, entries := c.stats(); entries != 2 {
		t.Errorf("entries = %d, want 2", entries)
	}
	if got, _ := c.get("test", 1, "a"); !bytes.Equal(got, []byte("a2")) {
		t.Errorf("overwrite lost: %q", got)
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	c := newLRUCache(0)
	c.put(1, "a", []byte("x"))
	if _, ok := c.get("test", 1, "a"); ok {
		t.Error("disabled cache served an entry")
	}
	if h, m, e := c.stats(); h != 0 || m != 0 || e != 0 {
		t.Errorf("disabled stats = %d/%d/%d", h, m, e)
	}
}

func TestCachePerEndpointStats(t *testing.T) {
	c := newLRUCache(8)
	c.get("search", 1, "q") // miss
	c.put(1, "q", []byte("x"))
	c.get("search", 1, "q")          // hit
	c.get("instances", 1, "missing") // miss
	eps := c.endpointStats()
	if s := eps["search"]; s.hits != 1 || s.misses != 1 {
		t.Fatalf("search stats = %+v, want 1 hit 1 miss", s)
	}
	if s := eps["instances"]; s.hits != 0 || s.misses != 1 {
		t.Fatalf("instances stats = %+v, want 0 hits 1 miss", s)
	}
	if disabled := newLRUCache(-1).endpointStats(); disabled != nil {
		t.Fatal("disabled cache should report nil endpoint stats")
	}
}
