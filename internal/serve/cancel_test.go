package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/kb"
)

// httpDo drives a real HTTP request (over the TCP loopback of an
// httptest.Server) and decodes the JSON response.
func httpDo(t *testing.T, client *http.Client, method, url, body string, out any) int {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// TestServeDeleteJobOverHTTP exercises DELETE /v1/jobs/{id} over a real
// HTTP server: unknown and finished jobs are rejected, and an in-flight
// ingest cancelled mid-batch ends as "cancelled" without committing an
// epoch, leaving the engine healthy for further ingests.
func TestServeDeleteJobOverHTTP(t *testing.T) {
	s, tables := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	if code := httpDo(t, c, http.MethodDelete, ts.URL+"/v1/jobs/999", "", nil); code != 404 {
		t.Errorf("DELETE unknown job = %d, want 404", code)
	}
	if code := httpDo(t, c, http.MethodDelete, ts.URL+"/v1/jobs/abc", "", nil); code != 400 {
		t.Errorf("DELETE bad job id = %d, want 400", code)
	}

	// Finished jobs conflict.
	var done JobView
	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[:1]})
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest?wait=1", string(body), &done); code != 200 || done.Status != statusDone {
		t.Fatalf("warm-up ingest = %d %+v", code, done)
	}
	if code := httpDo(t, c, http.MethodDelete, ts.URL+fmt.Sprintf("/v1/jobs/%d", done.ID), "", nil); code != 409 {
		t.Errorf("DELETE finished job = %d, want 409", code)
	}

	// Cancel an in-flight ingest. The remaining tables give the epoch
	// enough work that the DELETE usually lands mid-flight; both terminal
	// states are legal, but a cancelled job must not have committed.
	epochBefore := s.engines[kb.ClassGFPlayer].Epoch()
	kbBefore := s.kb.NumInstances()
	body, _ = json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[1:]})
	var jv JobView
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest", string(body), &jv); code != http.StatusAccepted {
		t.Fatalf("async ingest = %d", code)
	}
	delCode := httpDo(t, c, http.MethodDelete, ts.URL+fmt.Sprintf("/v1/jobs/%d", jv.ID), "", &jv)
	if delCode != http.StatusOK && delCode != http.StatusAccepted && delCode != http.StatusConflict {
		t.Fatalf("DELETE running job = %d", delCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for jv.Status == statusQueued || jv.Status == statusRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after cancel", jv.Status)
		}
		time.Sleep(5 * time.Millisecond)
		httpDo(t, c, http.MethodGet, ts.URL+fmt.Sprintf("/v1/jobs/%d", jv.ID), "", &jv)
	}
	switch jv.Status {
	case statusCancelled:
		if got := s.engines[kb.ClassGFPlayer].Epoch(); got != epochBefore {
			t.Errorf("cancelled job committed an epoch: %d -> %d", epochBefore, got)
		}
		if got := s.kb.NumInstances(); got != kbBefore {
			t.Errorf("cancelled job grew the KB: %d -> %d", kbBefore, got)
		}
	case statusDone:
		// The ingest won the race; that is a legal outcome.
	default:
		t.Fatalf("job ended %+v", jv)
	}

	// The class is not poisoned by cancellation: a fresh ingest works.
	var again JobView
	body, _ = json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables})
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest?wait=1", string(body), &again); code != 200 || again.Status != statusDone {
		t.Fatalf("post-cancel ingest = %d %+v", code, again)
	}
}

// TestServeDeleteQueuedJob: a job cancelled while still queued never runs.
func TestServeDeleteQueuedJob(t *testing.T) {
	s, tables := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	// Occupy the writer with a long job, then queue a second one and
	// cancel it before it can start.
	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables})
	var running, queued JobView
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest", string(body), &running); code != http.StatusAccepted {
		t.Fatalf("first ingest = %d", code)
	}
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest", string(body), &queued); code != http.StatusAccepted {
		t.Fatalf("second ingest = %d", code)
	}
	code := httpDo(t, c, http.MethodDelete, ts.URL+fmt.Sprintf("/v1/jobs/%d", queued.ID), "", &queued)
	// The second job is cancelled while queued (200) unless the first
	// finished so fast that it already ran (then 200/202/409 are possible).
	if code == http.StatusOK && queued.Status == statusCancelled {
		// Wait for the writer to skip it, then confirm it stayed cancelled.
		deadline := time.Now().Add(60 * time.Second)
		for {
			var cur JobView
			httpDo(t, c, http.MethodGet, ts.URL+fmt.Sprintf("/v1/jobs/%d", queued.ID), "", &cur)
			if cur.Status != statusCancelled {
				t.Fatalf("queued-cancelled job changed status: %+v", cur)
			}
			var first JobView
			httpDo(t, c, http.MethodGet, ts.URL+fmt.Sprintf("/v1/jobs/%d", running.ID), "", &first)
			if first.Status == statusDone || first.Status == statusFailed {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("first job never finished")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestServeShutdownDeadline: Shutdown with an expired deadline cancels the
// in-flight ingest cooperatively instead of waiting for the queue to
// drain, and the writer exits.
func TestServeShutdownDeadline(t *testing.T) {
	s, tables := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables})
	var jv JobView
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest", string(body), &jv); code != http.StatusAccepted {
		t.Fatalf("async ingest = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("Shutdown took %s despite expired deadline", took)
	}
	// err is nil when the job finished inside the grace period, the
	// context error when the drain was cut short; both leave the writer
	// stopped.
	if err != nil && err != context.DeadlineExceeded {
		t.Fatalf("Shutdown err = %v", err)
	}
	httpDo(t, c, http.MethodGet, ts.URL+fmt.Sprintf("/v1/jobs/%d", jv.ID), "", &jv)
	if jv.Status == statusQueued || jv.Status == statusRunning {
		t.Fatalf("job still %q after Shutdown returned", jv.Status)
	}
	// Post-shutdown ingests are refused, reads still work.
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest", string(body), nil); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown ingest = %d, want 503", code)
	}
	if code := httpDo(t, c, http.MethodGet, ts.URL+"/healthz", "", nil); code != 200 {
		t.Error("post-shutdown health check failed")
	}
}

// TestServeCancelledRawIngestKeepsCorpusIDs: a cancelled ingest carrying
// inline raw tables must NOT truncate the corpus — the engine may already
// have absorbed those tables' labels into its persistent blocking/PHI
// statistics keyed by table ID, and rebinding the IDs to later uploads
// with different content would corrupt later epochs. The appended tables
// stay in the corpus and the next upload gets fresh IDs.
func TestServeCancelledRawIngestKeepsCorpusIDs(t *testing.T) {
	s, tables := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()
	preLen := s.corpus.Len()

	// An ingest mixing a raw table with the full corpus batch (enough
	// work that the DELETE can land mid-flight).
	req := IngestRequest{
		Class:  "GF-Player",
		Tables: tables,
		Raw: []RawTable{{
			Caption: "upload A",
			Headers: []string{"Player", "Position"},
			Rows:    [][]string{{"Zebulon Quirk", "QB"}, {"Abner Yost", "TE"}},
		}},
	}
	body, _ := json.Marshal(req)
	var jv JobView
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest", string(body), &jv); code != http.StatusAccepted {
		t.Fatalf("async ingest = %d", code)
	}
	httpDo(t, c, http.MethodDelete, ts.URL+fmt.Sprintf("/v1/jobs/%d", jv.ID), "", nil)
	deadline := time.Now().Add(60 * time.Second)
	for jv.Status == statusQueued || jv.Status == statusRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jv.Status)
		}
		time.Sleep(5 * time.Millisecond)
		httpDo(t, c, http.MethodGet, ts.URL+fmt.Sprintf("/v1/jobs/%d", jv.ID), "", &jv)
	}

	switch jv.Status {
	case statusCancelled:
		// The appended raw table keeps its corpus slot.
		if got := s.corpus.Len(); got != preLen+1 {
			t.Errorf("corpus length after cancelled raw ingest = %d, want %d (table must stay appended)", got, preLen+1)
		}
		if !strings.Contains(jv.Error, "remain appended") {
			t.Errorf("cancelled job error does not explain the retained raw tables: %q", jv.Error)
		}
	case statusDone:
		if got := s.corpus.Len(); got != preLen+1 {
			t.Errorf("corpus length after done raw ingest = %d, want %d", got, preLen+1)
		}
	default:
		t.Fatalf("job ended %+v", jv)
	}

	// A later upload gets a fresh ID — never a reused one.
	req2 := IngestRequest{
		Class: "GF-Player",
		Raw: []RawTable{{
			Caption: "upload B",
			Headers: []string{"Player", "Position"},
			Rows:    [][]string{{"Barnaby Quill", "K"}, {"Tom Brady", "QB"}},
		}},
	}
	body, _ = json.Marshal(req2)
	var jv2 JobView
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest?wait=1", string(body), &jv2); code != 200 || jv2.Status != statusDone {
		t.Fatalf("second raw ingest = %d %+v", code, jv2)
	}
	if got := s.corpus.Len(); got != preLen+2 {
		t.Errorf("corpus length after second upload = %d, want %d (fresh ID, no reuse)", got, preLen+2)
	}
}

// TestServeCancelActiveJobsFreesQueueForSnapshot: with the writer busy and
// jobs queued, CancelActiveJobs (the shutdown path's drain-expiry action)
// unblocks the queue without closing the server, so a pending Snapshot
// still completes — closing instead would fail it with "server is shut
// down" and lose the final snapshot.
func TestServeCancelActiveJobsFreesQueueForSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, tables := newTestServer(t, dir)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	// One running ingest plus a few queued behind it.
	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables})
	for i := 0; i < 3; i++ {
		if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest", string(body), nil); code != http.StatusAccepted {
			t.Fatalf("ingest %d = %d", i, code)
		}
	}

	snapCh := make(chan error, 1)
	go func() {
		_, err := s.Snapshot()
		snapCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the snapshot enqueue behind the ingests
	s.CancelActiveJobs()
	select {
	case err := <-snapCh:
		if err != nil {
			t.Fatalf("snapshot after CancelActiveJobs: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("snapshot still blocked after CancelActiveJobs")
	}
	// The server is still open: a fresh ingest is accepted and runs.
	var jv JobView
	body, _ = json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[:1]})
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest?wait=1", string(body), &jv); code != 200 || jv.Status != statusDone {
		t.Fatalf("post-cancel ingest = %d %+v", code, jv)
	}
}

// TestServeDeleteQueuedSnapshotRefused: snapshots are not cancellable —
// queued or running — so one client's DELETE cannot kill another client's
// pending snapshot.
func TestServeDeleteQueuedSnapshotRefused(t *testing.T) {
	s, tables := newTestServer(t, t.TempDir())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	// Occupy the writer so the snapshot queues behind the ingest.
	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables})
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/ingest", string(body), nil); code != http.StatusAccepted {
		t.Fatalf("ingest = %d", code)
	}
	var snap JobView
	if code := httpDo(t, c, http.MethodPost, ts.URL+"/v1/snapshot", "", &snap); code != http.StatusAccepted {
		t.Fatalf("snapshot enqueue = %d", code)
	}
	if code := httpDo(t, c, http.MethodDelete, ts.URL+fmt.Sprintf("/v1/jobs/%d", snap.ID), "", nil); code != http.StatusConflict {
		t.Errorf("DELETE queued/running snapshot = %d, want 409", code)
	}
	// The snapshot still completes once the writer reaches it.
	deadline := time.Now().Add(60 * time.Second)
	for {
		httpDo(t, c, http.MethodGet, ts.URL+fmt.Sprintf("/v1/jobs/%d", snap.ID), "", &snap)
		if snap.Status == statusDone {
			break
		}
		if snap.Status == statusFailed || snap.Status == statusCancelled {
			t.Fatalf("snapshot ended %+v", snap)
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot stuck in %q", snap.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
