// Package serve exposes a live knowledge base over a long-running
// HTTP/JSON API: entity lookup by instance ID, fuzzy label search backed
// by the inverted label index, per-class/per-epoch ingestion statistics,
// and an asynchronous ingest endpoint that queues table batches through a
// durable multi-class job scheduler while reads stay lock-free on the
// concurrent-safe KB.
//
// # Concurrency model
//
// Each served class has its own writer goroutine consuming its own
// capacity-bounded job queue, so independent classes ingest in parallel
// while jobs of one class keep strict FIFO order; a dedicated lane runs
// snapshots. All cross-class mutation is safe by construction — the KB
// (RWMutex + monotonic Version), the corpus (guarded method surface), and
// the label indexes are concurrent-safe — and an RWMutex over execution
// makes snapshots exclusive: ingests run under the read half, snapshots
// take the write half, so a manifest's epoch bookkeeping can never
// disagree with the KB instance chain it describes. POST /v1/ingest and
// POST /v1/snapshot enqueue jobs and return immediately (add ?wait=1 to
// block until the job finishes). When a class's queue is full the server
// rejects with 429 Too Many Requests and a Retry-After header —
// backpressure, distinct from the 503 returned once shutdown has begun.
// Read endpoints touch only concurrent-safe structures plus an LRU
// response cache keyed on kb.Version, so hot lookups skip retrieval
// entirely and can never serve a pre-mutation body for a post-mutation
// version.
//
// # Job durability
//
// With a snapshot directory configured, every job is journaled to
// jobs.ndjson in it — one fsynced record at admission carrying the full
// inputs, and one per status transition. A warm start replays the
// journal: jobs that finished come back as queryable history until their
// TTL expires, and jobs that were still queued or running when the
// process died come back as "interrupted", carrying their inputs so the
// operator can resubmit them (a killed epoch commits nothing, so
// resubmission is safe). The journal is compacted with the same temp
// file + rename + fsync discipline as the KB snapshot segments.
//
// # Dependencies
//
// An ingest or snapshot request may name jobs it must run after
// ("after": [ids]). The job dispatches only once every dependency
// finished successfully; if any dependency fails, is cancelled, or was
// interrupted, the dependent fails immediately with an error naming the
// dependency, and the failure cascades through deeper dependents.
// Dependency-parked jobs count against their lane's queue capacity.
//
// # Cancellation
//
// Every ingest job carries its own context. DELETE /v1/jobs/{id} cancels
// it: a queued job is skipped by its writer, a running one unwinds at the
// engine's next cooperative checkpoint and ends with status "cancelled" —
// the epoch commits nothing, the engine stays healthy, and the class
// accepts further ingests (unlike a panic, which poisons it). While a job
// runs, GET /v1/jobs/{id} reports the pipeline stage it most recently
// entered, fed by the engines' progress events. Shutdown(ctx) extends the
// same mechanism to process exit: the queues drain until the deadline,
// then everything still pending or running is cancelled cooperatively.
//
// # Snapshot persistence
//
// With a snapshot directory configured, the server warm-starts by loading
// the instances earlier runs wrote back (kb.LoadSnapshot) and resuming
// each engine's epoch counter from the manifest, so discoveries survive a
// restart without re-ingesting their tables. POST /v1/snapshot persists
// the current state atomically (temp file + rename, manifest last).
package serve
