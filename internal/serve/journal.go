package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The job journal makes the scheduler's job records durable: every job is
// appended to <snapshotDir>/jobs.ndjson when it is accepted and again on
// each status transition, with an fsync after each append — the same
// durability point the kb segment commits use. A warm start replays the
// journal: jobs whose last record is terminal come back as queryable
// history, and jobs that were still queued or running when the process
// died come back as "interrupted", carrying their full inputs so the
// operator can resubmit them. Replay then compacts the journal to one
// merged record per retained job via the kb temp-file+rename+fsync
// discipline, so the file never grows beyond the retained set plus the
// transitions appended since the last compaction.
const journalFile = "jobs.ndjson"

// journalFault, when non-nil, is called before each journal append with
// the record's status. A returned error simulates a crash mid-append: only
// a prefix of the record's bytes reaches the file (no trailing newline)
// and the append reports the error. Test hook only, same shape as
// kb's snapshotFault.
var journalFault func(status string) error

// jobRecord is one journal line: the full job description on the
// "queued" record, and sparse transition fields afterwards. Replay folds
// a job's records in order — later non-empty fields override.
type jobRecord struct {
	ID     int64  `json:"id"`
	Status string `json:"status"`
	// Enqueue-time inputs (present on the "queued" record and on
	// compacted merged records).
	Kind   string     `json:"kind,omitempty"`
	Class  string     `json:"class,omitempty"`
	Tables []int      `json:"tables,omitempty"`
	Auto   int        `json:"auto,omitempty"`
	Raw    []RawTable `json:"raw,omitempty"`
	After  []int64    `json:"after,omitempty"`
	// Transition details.
	RawIDs []int  `json:"rawIDs,omitempty"`
	Error  string `json:"error,omitempty"`
	// Unix is the transition's wall-clock second, used by the TTL
	// eviction of finished records.
	Unix int64 `json:"unix,omitempty"`
}

// jobJournal appends job records to the journal file and rewrites it on
// compaction. Calls are serialized by the scheduler's jobMu; the journal
// itself holds no lock.
type jobJournal struct {
	path string
	f    *os.File
	// appendedSinceCompact counts records appended since the file was
	// last compacted; the scheduler compacts once enough evicted or
	// superseded records have accumulated.
	appendedSinceCompact int
}

// openJobJournal opens (creating if needed) the journal in dir for
// appending. Callers replay the prior contents first via replayJobJournal.
func openJobJournal(dir string) (*jobJournal, error) {
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening job journal: %w", err)
	}
	return &jobJournal{path: path, f: f}, nil
}

// close releases the append handle. The returned error is the Close
// error of the underlying file: every append fsyncs before returning, so
// nothing unflushed can be lost here, but a failing Close still signals
// a sick filesystem and callers on durability paths must surface it.
func (jl *jobJournal) close() error {
	if jl.f == nil {
		return nil
	}
	err := jl.f.Close()
	jl.f = nil
	if err != nil {
		return fmt.Errorf("serve: closing job journal: %w", err)
	}
	return nil
}

// append writes one record plus newline and fsyncs, making the transition
// durable before the caller acts on it.
func (jl *jobJournal) append(rec jobRecord) error {
	raw, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("serve: encoding job record: %w", err)
	}
	if journalFault != nil {
		if ferr := journalFault(rec.Status); ferr != nil {
			// Simulate the crash: a prefix of the line reaches the disk,
			// no newline, and the process "dies" here.
			jl.f.Write(raw[:len(raw)/2])
			jl.f.Sync()
			return ferr
		}
	}
	raw = append(raw, '\n')
	if _, err := jl.f.Write(raw); err != nil {
		return fmt.Errorf("serve: appending job record: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("serve: syncing job journal: %w", err)
	}
	jl.appendedSinceCompact++
	return nil
}

// compact rewrites the journal to exactly one merged record per entry of
// recs (ordered by ID), committing via temp-file+rename+fsync so a crash
// mid-compaction leaves the previous journal intact, then reopens the
// append handle on the new file.
func (jl *jobJournal) compact(recs []jobRecord) error {
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	if err := atomicWriteFile(jl.path, func(f *os.File) error {
		w := bufio.NewWriter(f)
		for i := range recs {
			raw, err := json.Marshal(&recs[i])
			if err != nil {
				return err
			}
			raw = append(raw, '\n')
			if _, err := w.Write(raw); err != nil {
				return err
			}
		}
		return w.Flush()
	}); err != nil {
		return fmt.Errorf("serve: compacting job journal: %w", err)
	}
	if err := jl.close(); err != nil {
		return err
	}
	f, err := os.OpenFile(jl.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: reopening job journal: %w", err)
	}
	jl.f = f
	jl.appendedSinceCompact = 0
	return nil
}

// replayJobJournal reads the journal in dir and folds each job's records
// into its final state, returned in ID order alongside the highest ID
// seen. A missing journal returns an empty slice. A line that does not
// decode ends the replay there — it is the torn tail of an append the
// crash cut short; everything before it is intact by the fsync ordering
// (records later in the file are strictly younger).
func replayJobJournal(dir string) ([]jobRecord, int64, error) {
	f, err := os.Open(filepath.Join(dir, journalFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serve: opening job journal: %w", err)
	}
	defer f.Close()

	byID := make(map[int64]*jobRecord)
	var order []int64
	var maxID int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail of a crashed append; stop here.
			break
		}
		if rec.ID <= 0 {
			continue
		}
		if rec.ID > maxID {
			maxID = rec.ID
		}
		cur, ok := byID[rec.ID]
		if !ok {
			recCopy := rec
			byID[rec.ID] = &recCopy
			order = append(order, rec.ID)
			continue
		}
		// Fold: status and timestamp always advance; input and detail
		// fields stick once set.
		cur.Status = rec.Status
		if rec.Unix != 0 {
			cur.Unix = rec.Unix
		}
		if rec.Kind != "" {
			cur.Kind = rec.Kind
		}
		if rec.Class != "" {
			cur.Class = rec.Class
		}
		if len(rec.Tables) > 0 {
			cur.Tables = rec.Tables
		}
		if rec.Auto != 0 {
			cur.Auto = rec.Auto
		}
		if len(rec.Raw) > 0 {
			cur.Raw = rec.Raw
		}
		if len(rec.After) > 0 {
			cur.After = rec.After
		}
		if len(rec.RawIDs) > 0 {
			cur.RawIDs = rec.RawIDs
		}
		if rec.Error != "" {
			cur.Error = rec.Error
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("serve: reading job journal: %w", err)
	}
	out := make([]jobRecord, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, maxID, nil
}

// atomicWriteFile writes path via a temporary sibling and a rename, with
// an fsync before the rename and one on the directory after it — the same
// commit discipline as the kb snapshot segments.
func atomicWriteFile(path string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}
