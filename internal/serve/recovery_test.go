package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/kb"
)

// journalServer builds a single-class server over dir whose engine parks
// at its first progress event whenever park is set, signalling started.
// Each call regenerates the deterministic fixture, so two servers over
// the same dir model the same deployment across a process restart.
func journalServer(t testing.TB, dir string, park *atomic.Bool, started chan struct{}) (*Server, []int) {
	t.Helper()
	w, c, tables := fixture(t)
	cfg := core.DefaultConfig(w.KB, c, kb.ClassGFPlayer)
	cfg.Iterations = 1
	gate := make(chan struct{})
	if park != nil {
		cfg.Progress = func(core.Event) {
			if !park.Load() {
				return
			}
			select {
			case started <- struct{}{}:
			default:
			}
			<-gate
		}
	}
	s, err := New(Config{
		KB:     w.KB,
		Corpus: c,
		Engines: map[kb.ClassID]*core.Engine{
			kb.ClassGFPlayer: core.NewEngine(cfg, core.Models{}),
		},
		SnapshotDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	t.Cleanup(func() {
		park.Store(false)
		close(gate) // unpark before Close drains
	})
	return s, tables
}

// TestServeInterruptedJobRecovery simulates a crash mid-ingest: a job is
// parked while running (its "running" record already journaled) and the
// process is abandoned without any shutdown. The restarted server must
// report the job as interrupted with its resubmittable inputs, and
// resubmitting them must produce exactly the state a crash-free run
// reaches — the commits-nothing invariant makes the retry safe.
func TestServeInterruptedJobRecovery(t *testing.T) {
	dir := t.TempDir()
	var park atomic.Bool
	started := make(chan struct{}, 1)
	s1, tables := journalServer(t, dir, &park, started)
	batch1, batch2 := tables[:1], tables[1:2]

	ingestWait(t, s1, batch1)
	var snap JobView
	if code := do(t, s1, http.MethodPost, "/v1/snapshot?wait=1", "", &snap); code != 200 || snap.Status != statusDone {
		t.Fatalf("snapshot = %d %+v", code, snap)
	}

	// The doomed job: journaled as queued and running, then the process
	// "dies" (the server is simply abandoned; nothing is closed).
	park.Store(true)
	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: batch2})
	var doomed JobView
	do(t, s1, http.MethodPost, "/v1/ingest", string(body), &doomed)
	<-started
	// The doomed job is now blocked inside its gate; clearing park keeps
	// the restarted server (which shares the flag) from parking too.
	park.Store(false)

	// "Restart": a second server over the same directory.
	s2, _ := journalServer(t, dir, &park, started)
	if s2.Warm == nil {
		t.Fatal("restarted server did not warm-start")
	}
	var jl JobsView
	do(t, s2, http.MethodGet, "/v1/jobs?status=interrupted", "", &jl)
	if len(jl.Jobs) != 1 {
		t.Fatalf("interrupted jobs after restart = %+v", jl.Jobs)
	}
	ij := jl.Jobs[0]
	if ij.ID != doomed.ID || ij.Kind != jobIngest || ij.Inputs == nil {
		t.Fatalf("interrupted job = %+v", ij)
	}
	if fmt.Sprint(ij.Inputs.Tables) != fmt.Sprint(batch2) {
		t.Fatalf("interrupted inputs = %v, want %v", ij.Inputs.Tables, batch2)
	}

	// The interrupted record is history, not a live job: it cannot be
	// cancelled, only resubmitted.
	if code := do(t, s2, http.MethodDelete, fmt.Sprintf("/v1/jobs/%d", ij.ID), "", nil); code != http.StatusConflict {
		t.Errorf("cancelling an interrupted job = %d, want 409", code)
	}

	// Resubmit the reported inputs and compare against a crash-free
	// control deployment (same snapshot point, same second batch).
	resub, _ := json.Marshal(IngestRequest{Class: ij.Class, Tables: ij.Inputs.Tables})
	var rv JobView
	if code := do(t, s2, http.MethodPost, "/v1/ingest?wait=1", string(resub), &rv); code != 200 || rv.Status != statusDone {
		t.Fatalf("resubmitted ingest = %d %+v", code, rv)
	}

	ctrlDir := t.TempDir()
	var ctrlPark atomic.Bool
	c1, _ := journalServer(t, ctrlDir, &ctrlPark, nil)
	ingestWait(t, c1, batch1)
	if code := do(t, c1, http.MethodPost, "/v1/snapshot?wait=1", "", nil); code != 200 {
		t.Fatalf("control snapshot = %d", code)
	}
	c1.Close()
	c2, _ := journalServer(t, ctrlDir, &ctrlPark, nil)
	ingestWait(t, c2, batch2)

	var crashed, control EntitiesView
	do(t, s2, http.MethodGet, "/v1/classes/GF-Player/entities", "", &crashed)
	do(t, c2, http.MethodGet, "/v1/classes/GF-Player/entities", "", &control)
	cb, _ := json.Marshal(crashed)
	gb, _ := json.Marshal(control)
	if string(cb) != string(gb) {
		t.Errorf("recovered state diverges from crash-free control:\nrecovered: %s\ncontrol:   %s", cb, gb)
	}
}

// TestServeJournalAppendCrash simulates the disk failing mid-append of a
// job's admission record (a torn half-record with no newline, the shape a
// power cut leaves): the job must be refused — the scheduler never runs
// work a restart would not know about — and both the running server and a
// restarted one must carry on with an intact journal.
func TestServeJournalAppendCrash(t *testing.T) {
	dir := t.TempDir()
	var park atomic.Bool
	s1, tables := journalServer(t, dir, &park, nil)
	done := ingestWait(t, s1, tables[:1])

	journalFault = func(status string) error {
		if status == statusQueued {
			return errors.New("simulated disk failure")
		}
		return nil
	}
	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[1:2]})
	if code := do(t, s1, http.MethodPost, "/v1/ingest", string(body), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("ingest during journal failure = %d, want 503", code)
	}
	journalFault = nil

	// The journal healed in place: a follow-up job on the same server
	// journals and runs normally.
	after := ingestWait(t, s1, tables[1:2])

	// A restart sees exactly the two completed jobs — no ghost of the
	// refused one, no replay corruption from the torn bytes.
	s2, _ := journalServer(t, dir, &park, nil)
	var jl JobsView
	do(t, s2, http.MethodGet, "/v1/jobs", "", &jl)
	ids := make(map[int64]string, len(jl.Jobs))
	for _, j := range jl.Jobs {
		ids[j.ID] = j.Status
	}
	if len(ids) != 2 || ids[done.ID] != statusDone || ids[after.ID] != statusDone {
		t.Fatalf("jobs after restart = %+v", jl.Jobs)
	}
}

// TestJournalReplayTornTail exercises replay directly: a journal whose
// final line is a torn partial record (no newline, half the bytes) must
// fold every record before it and stop there.
func TestJournalReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJobJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	must := func(rec jobRecord) {
		t.Helper()
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(jobRecord{ID: 1, Status: statusQueued, Kind: jobIngest, Class: "c", Tables: []int{7}, Unix: 100})
	must(jobRecord{ID: 1, Status: statusRunning, Unix: 101})
	must(jobRecord{ID: 1, Status: statusDone, Unix: 102})
	must(jobRecord{ID: 2, Status: statusQueued, Kind: jobIngest, Class: "c", Auto: 3, After: []int64{1}, Unix: 103})
	// Tear the tail: half of a record for job 2, no newline.
	raw, _ := json.Marshal(jobRecord{ID: 2, Status: statusRunning, Unix: 104})
	if _, err := jl.f.Write(raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}
	jl.close()

	recs, maxID, err := replayJobJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if maxID != 2 || len(recs) != 2 {
		t.Fatalf("replay = %d records, maxID %d", len(recs), maxID)
	}
	if recs[0].ID != 1 || recs[0].Status != statusDone || recs[0].Unix != 102 || len(recs[0].Tables) != 1 {
		t.Errorf("folded record 1 = %+v", recs[0])
	}
	// Job 2's torn running record is discarded; its queued record, with
	// inputs intact, survives — exactly what interrupted reporting needs.
	if recs[1].ID != 2 || recs[1].Status != statusQueued || recs[1].Auto != 3 || len(recs[1].After) != 1 {
		t.Errorf("folded record 2 = %+v", recs[1])
	}

	// Replay after appending beyond a compaction still works.
	jl2, err := openJobJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl2.compact(recs); err != nil {
		t.Fatal(err)
	}
	if err := jl2.append(jobRecord{ID: 3, Status: statusQueued, Kind: jobSnapshot, Unix: 105}); err != nil {
		t.Fatal(err)
	}
	jl2.close()
	recs, maxID, err = replayJobJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || maxID != 3 {
		t.Fatalf("replay after compaction = %d records, maxID %d", len(recs), maxID)
	}
}

// TestServeJournalDisabled: DisableJournal keeps the snapshot directory
// free of a job journal and a restart reports no interrupted jobs.
func TestServeJournalDisabled(t *testing.T) {
	dir := t.TempDir()
	w, c, tables := fixture(t)
	cfg := core.DefaultConfig(w.KB, c, kb.ClassGFPlayer)
	cfg.Iterations = 1
	s, err := New(Config{
		KB:     w.KB,
		Corpus: c,
		Engines: map[kb.ClassID]*core.Engine{
			kb.ClassGFPlayer: core.NewEngine(cfg, core.Models{}),
		},
		SnapshotDir:    dir,
		DisableJournal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ingestWait(t, s, tables[:1])
	if _, err := os.Stat(filepath.Join(dir, journalFile)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("journal file exists despite DisableJournal (stat err %v)", err)
	}
}

// TestJournalClosePropagatesError is the regression test for the errdrop
// finding in jobJournal.close: the handle's Close error used to be
// discarded, so a sick filesystem at compaction time went unnoticed. The
// error must now reach close's caller — and through compact, the
// scheduler — while a second close of an already-released journal stays
// a clean no-op.
func TestJournalClosePropagatesError(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJobJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: release the descriptor underneath the journal so the
	// journal's own Close fails.
	if err := jl.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jl.close(); err == nil {
		t.Fatal("close() after the handle already closed returned nil; the Close error was dropped")
	}
	if err := jl.close(); err != nil {
		t.Fatalf("close() of a released journal: %v", err)
	}

	// The same error must surface through compact, which closes the old
	// handle before reopening the compacted file.
	jl2, err := openJobJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl2.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jl2.compact(nil); err == nil {
		t.Fatal("compact() with a failing journal close returned nil")
	}
}
