package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/webtable"
)

// The scheduler replaces the original single-writer loop: one writer
// goroutine per served class, each consuming its own capacity-bounded
// queue, plus a dedicated snapshot lane. Independent classes ingest in
// parallel (the engines are per-class and every shared structure — KB,
// corpus, label indexes — is concurrent-safe); per-class ordering is
// preserved because each class's queue is FIFO and drained by exactly one
// goroutine. Snapshot jobs quiesce all writers through execMu: ingests
// run under the read half, snapshots take the write half, so a manifest's
// epoch bookkeeping can never disagree with the instance chain it
// describes.

const (
	jobIngest   = "ingest"
	jobSnapshot = "snapshot"

	statusQueued    = "queued"
	statusRunning   = "running"
	statusDone      = "done"
	statusFailed    = "failed"
	statusCancelled = "cancelled"
	// statusInterrupted marks a job that was queued or running when the
	// process died: the journal replay reports it with its full inputs so
	// the operator can resubmit (nothing of it was committed — a killed
	// epoch publishes nothing).
	statusInterrupted = "interrupted"
)

// terminalStatus reports whether a status is final.
func terminalStatus(status string) bool {
	switch status {
	case statusDone, statusFailed, statusCancelled, statusInterrupted:
		return true
	}
	return false
}

// job is one unit of writer work plus its externally visible state.
type job struct {
	// Mutable state, guarded by Server.jobMu.
	id       int64
	kind     string
	status   string
	stage    string // current pipeline stage while running (progress events)
	errMsg   string
	stats    *core.IngestStats
	manifest *kb.Manifest
	finished time.Time // terminal transition time, drives TTL eviction
	// waitingOn holds the not-yet-finished dependency IDs; non-nil exactly
	// while the job is counted in its lane's waiting total (nil once
	// dispatched, completed, or never dep-gated).
	waitingOn map[int64]struct{}
	// dependents lists jobs whose `after` includes this one.
	dependents []int64
	// rawIDs records the corpus IDs the job's raw tables were appended
	// under (set while running, journaled, reported for retry-by-ID).
	rawIDs []int

	// Inputs, immutable after enqueue. rawSpec mirrors raw in request form
	// for the journal and the interrupted-job report; raw is freed when
	// the job finishes, rawSpec only when the outcome is not interrupted.
	class   kb.ClassID
	tables  []int
	auto    int
	raw     []*webtable.Table
	rawSpec []RawTable
	after   []int64

	// ctx is cancelled by DELETE /v1/jobs/{id} and by a deadline-expired
	// Shutdown; the engine's cooperative checkpoints observe it.
	ctx    context.Context
	cancel context.CancelFunc

	done chan struct{}
}

func (j *job) terminal() bool { return terminalStatus(j.status) }

// lane is one writer goroutine's bounded queue. The per-class ingest
// lanes and the snapshot lane share the shape.
type lane struct {
	class kb.ClassID // "" for the snapshot lane
	q     chan *job
	// occupancy counts jobs currently buffered in q — including jobs
	// cancelled after being queued, which stay in the channel as
	// carcasses until the writer pops and skips them. waiting counts
	// dependency-gated jobs bound for this lane but not yet in q.
	// occupancy+waiting <= queueDepth is the admission invariant that
	// guarantees a dispatch send never blocks. Both guarded by jobMu.
	occupancy int
	waiting   int
}

// errQueueFull distinguishes backpressure (retryable, 429) from shutdown
// (503).
var errQueueFull = errors.New("serve: job queue is full")

// errClosed is returned for jobs submitted after shutdown began.
var errClosed = errors.New("serve: server is shut down")

// errUnknownDep marks a dependency on a job ID the server does not know —
// a client error (400), not backpressure or shutdown.
var errUnknownDep = errors.New("unknown dependency")

// laneFor returns the lane a job runs on.
func (s *Server) laneFor(j *job) *lane {
	if j.kind == jobSnapshot {
		return s.snapLane
	}
	return s.lanes[j.class]
}

// enqueue registers a job, journals it, and either dispatches it to its
// lane, parks it until its dependencies finish, or — when a dependency
// already finished unsuccessfully — fails it on the spot.
func (s *Server) enqueue(j *job) (*job, error) {
	j.done = make(chan struct{})
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	ln := s.laneFor(j)
	if ln == nil {
		return nil, fmt.Errorf("serve: class %q has no writer", j.class)
	}
	// Resolve dependencies first: an unknown ID is a client error that
	// must not consume a queue slot.
	var failedDep *job
	var waiting map[int64]struct{}
	for _, id := range j.after {
		dj := s.jobs[id]
		if dj == nil {
			return nil, fmt.Errorf("serve: %w: job %d (finished jobs are evicted after the job TTL)", errUnknownDep, id)
		}
		switch {
		case dj.status == statusDone:
			// Satisfied.
		case dj.terminal():
			if failedDep == nil {
				failedDep = dj
			}
		default:
			if waiting == nil {
				waiting = make(map[int64]struct{})
			}
			waiting[id] = struct{}{}
		}
	}
	if ln.occupancy+ln.waiting >= s.queueDepth {
		return nil, errQueueFull
	}
	s.nextJob++
	j.id = s.nextJob
	j.status = statusQueued
	s.jobs[j.id] = j
	s.active++
	if err := s.journalAppendLocked(s.queuedRecord(j)); err != nil {
		// The job could not be made durable; refuse it rather than run
		// work a restart would not know about. The journal tail may be
		// torn, so rewrite it — after unregistering, so the refused job
		// cannot resurface as an interrupted ghost.
		delete(s.jobs, j.id)
		s.active--
		s.repairJournalLocked()
		return nil, err
	}
	switch {
	case failedDep != nil:
		s.completeJobLocked(j, statusFailed,
			fmt.Sprintf("dependency job %d %s; not running dependents", failedDep.id, failedDep.status))
	case len(waiting) > 0:
		j.waitingOn = waiting
		ln.waiting++
		for id := range waiting {
			dj := s.jobs[id]
			dj.dependents = append(dj.dependents, j.id)
		}
	default:
		s.dispatchLocked(j)
	}
	s.evictExpiredLocked()
	return j, nil
}

// dispatchLocked hands a job to its lane's writer. The admission
// invariant (occupancy+waiting <= queueDepth, channel capacity ==
// queueDepth) guarantees the send cannot block.
func (s *Server) dispatchLocked(j *job) {
	ln := s.laneFor(j)
	ln.occupancy++
	select {
	case ln.q <- j:
	default:
		// Unreachable while the admission invariant holds; fail loudly
		// rather than deadlock the caller holding jobMu.
		ln.occupancy--
		s.completeJobLocked(j, statusFailed, "internal: lane queue overflow")
	}
}

// completeJob is the unlocked wrapper around completeJobLocked.
func (s *Server) completeJob(j *job, status, errMsg string) {
	s.jobMu.Lock()
	s.completeJobLocked(j, status, errMsg)
	s.jobMu.Unlock()
}

// completeJobLocked moves a job to a terminal status exactly once:
// journals the transition, releases its context, frees its inputs
// (interrupted jobs keep them for resubmission), cascades to dependents —
// a successful dependency dispatches dependents whose last gate this was,
// an unsuccessful one fails them — and closes the done channel.
func (s *Server) completeJobLocked(j *job, status, errMsg string) {
	if j.terminal() {
		return
	}
	if j.waitingOn != nil {
		s.laneFor(j).waiting--
		j.waitingOn = nil
	}
	j.status = status
	j.errMsg = errMsg
	j.stage = ""
	j.finished = s.now()
	s.journalTransitionLocked(jobRecord{
		ID: j.id, Status: status, Error: errMsg, RawIDs: j.rawIDs, Unix: j.finished.Unix(),
	})
	if j.cancel != nil {
		j.cancel() // release the context's resources
	}
	// Raw table payloads can be large; keep the request-form copy only
	// when the operator needs it to resubmit.
	j.raw = nil
	if status != statusInterrupted {
		j.rawSpec = nil
	}
	s.active--
	for _, did := range j.dependents {
		d := s.jobs[did]
		if d == nil || d.terminal() || d.waitingOn == nil {
			continue
		}
		delete(d.waitingOn, j.id)
		if status != statusDone {
			s.completeJobLocked(d, statusFailed,
				fmt.Sprintf("dependency job %d %s; not run", j.id, status))
		} else if len(d.waitingOn) == 0 {
			s.laneFor(d).waiting--
			d.waitingOn = nil
			s.dispatchLocked(d)
		}
	}
	j.dependents = nil
	close(j.done)
	if s.closed {
		s.maybeCloseQueuesLocked()
	}
}

// executeJob runs one job on its lane's writer goroutine. A panic
// escaping the engine fails the job instead of taking the server down.
// Jobs cancelled while still queued are skipped (their completion already
// happened at cancel time).
func (s *Server) executeJob(ln *lane, j *job) {
	s.jobMu.Lock()
	ln.occupancy--
	if j.terminal() {
		s.jobMu.Unlock()
		return
	}
	j.status = statusRunning
	s.running[ln.class] = j
	s.journalTransitionLocked(jobRecord{ID: j.id, Status: statusRunning, Unix: s.now().Unix()})
	s.jobMu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			s.completeJob(j, statusFailed, fmt.Sprintf("panic: %v", r))
		}
		s.jobMu.Lock()
		if s.running[ln.class] == j {
			delete(s.running, ln.class)
		}
		s.jobMu.Unlock()
	}()
	switch j.kind {
	case jobIngest:
		s.runIngest(j)
	case jobSnapshot:
		s.runSnapshot(j)
	}
}

// noteStage records the pipeline stage an in-flight ingest just entered,
// for GET /v1/jobs/{id}. Called from the class engine's progress hook,
// which fires on that class's writer goroutine while its job runs.
func (s *Server) noteStage(class kb.ClassID, ev core.Event) {
	s.jobMu.Lock()
	if j := s.running[class]; j != nil {
		if ev.Iteration > 0 {
			j.stage = fmt.Sprintf("i%d/%s", ev.Iteration, ev.Stage)
		} else {
			j.stage = string(ev.Stage)
		}
	}
	s.jobMu.Unlock()
}

// maybeCloseQueuesLocked closes every lane once shutdown has begun and no
// job is live anymore, letting the writer goroutines drain their
// remaining carcasses and exit.
func (s *Server) maybeCloseQueuesLocked() {
	if !s.closed || s.active > 0 || s.queuesClosed {
		return
	}
	s.queuesClosed = true
	for _, ln := range s.lanes {
		close(ln.q)
	}
	close(s.snapLane.q)
}

// evictExpiredLocked drops finished job records older than the job TTL
// from memory and, once enough evictions accumulated, folds the journal
// down to the retained set.
func (s *Server) evictExpiredLocked() {
	if s.jobTTL <= 0 {
		return
	}
	cutoff := s.now().Add(-s.jobTTL)
	for id, j := range s.jobs {
		if j.terminal() && !j.finished.IsZero() && j.finished.Before(cutoff) {
			delete(s.jobs, id)
			s.evicted++
		}
	}
	if s.journal != nil && s.evicted >= journalCompactEvery {
		if err := s.journal.compact(s.recordsLocked()); err == nil {
			s.evicted = 0
		}
	}
}

// journalCompactEvery is how many evictions may accumulate before the
// journal is folded down to the retained records.
const journalCompactEvery = 32

// journalAppendLocked appends one record when journaling is enabled.
// enqueue treats a failed "queued" append as fatal for the job, so a job
// the journal does not know about never runs.
func (s *Server) journalAppendLocked(rec jobRecord) error {
	if s.journal == nil {
		return nil
	}
	return s.journal.append(rec)
}

// journalTransitionLocked appends a transition record. A failure does not
// fail the job — the in-memory state stays authoritative — but the
// journal's tail may now hold a torn partial record, so it is repaired
// before any further append could compound the damage.
func (s *Server) journalTransitionLocked(rec jobRecord) {
	if err := s.journalAppendLocked(rec); err != nil {
		s.repairJournalLocked()
	}
}

// repairJournalLocked rewrites the journal from in-memory state (an
// atomic whole-file rewrite, bypassing the possibly-torn tail a failed
// append left). If even the rewrite fails, journaling is disabled rather
// than risk feeding a corrupt file to the next restart.
func (s *Server) repairJournalLocked() {
	if s.journal == nil {
		return
	}
	if err := s.journal.compact(s.recordsLocked()); err != nil {
		// Journaling is being disabled; the close error adds nothing.
		_ = s.journal.close()
		s.journal = nil
	}
}

// queuedRecord renders a job's full enqueue-time record.
func (s *Server) queuedRecord(j *job) jobRecord {
	return jobRecord{
		ID:     j.id,
		Status: statusQueued,
		Kind:   j.kind,
		Class:  string(j.class),
		Tables: j.tables,
		Auto:   j.auto,
		Raw:    j.rawSpec,
		After:  j.after,
		Unix:   s.now().Unix(),
	}
}

// recordsLocked renders every retained job as one merged journal record.
func (s *Server) recordsLocked() []jobRecord {
	recs := make([]jobRecord, 0, len(s.jobs))
	for _, j := range s.jobs {
		rec := jobRecord{
			ID:     j.id,
			Status: j.status,
			Kind:   j.kind,
			Class:  string(j.class),
			Tables: j.tables,
			Auto:   j.auto,
			Raw:    j.rawSpec,
			After:  j.after,
			RawIDs: j.rawIDs,
			Error:  j.errMsg,
		}
		if !j.finished.IsZero() {
			rec.Unix = j.finished.Unix()
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].ID < recs[k].ID })
	return recs
}

// loadJournal replays the job journal at startup: terminal records within
// the TTL come back as queryable history, and jobs that were queued or
// running when the process died come back as "interrupted" with their
// inputs intact. The journal is then compacted to the retained set.
func (s *Server) loadJournal() error {
	recs, maxID, err := replayJobJournal(s.snapshotDir)
	if err != nil {
		return err
	}
	jl, err := openJobJournal(s.snapshotDir)
	if err != nil {
		return err
	}
	s.journal = jl
	if maxID > s.nextJob {
		s.nextJob = maxID
	}
	now := s.now()
	cutoff := now.Add(-s.jobTTL)
	for i := range recs {
		rec := recs[i]
		j := &job{
			id:      rec.ID,
			kind:    rec.Kind,
			status:  rec.Status,
			errMsg:  rec.Error,
			class:   kb.ClassID(rec.Class),
			tables:  rec.Tables,
			auto:    rec.Auto,
			rawSpec: rec.Raw,
			after:   rec.After,
			rawIDs:  rec.RawIDs,
			done:    make(chan struct{}),
		}
		if terminalStatus(rec.Status) {
			j.finished = time.Unix(rec.Unix, 0)
			if s.jobTTL > 0 && j.finished.Before(cutoff) {
				continue // expired; the compaction below drops it
			}
			if rec.Status != statusInterrupted {
				j.rawSpec = nil
			}
		} else {
			// Queued or running at crash time. The engine publishes an
			// epoch atomically at its end, so a killed job committed
			// nothing; report it with resubmittable inputs.
			j.status = statusInterrupted
			j.finished = now
			j.errMsg = fmt.Sprintf(
				"interrupted: the server stopped while this job was %s; nothing of it was committed — resubmit its inputs",
				rec.Status)
		}
		close(j.done)
		s.jobs[j.id] = j
	}
	return s.journal.compact(s.recordsLocked())
}

// startWriters launches one writer goroutine per lane plus the snapshot
// lane, and the waiter that closes writersDone when all of them exit.
func (s *Server) startWriters() {
	run := func(ln *lane) {
		defer s.writersWG.Done()
		for j := range ln.q {
			s.executeJob(ln, j)
		}
	}
	for _, ln := range s.lanes {
		s.writersWG.Add(1)
		go run(ln)
	}
	s.writersWG.Add(1)
	go run(s.snapLane)
	go func() {
		s.writersWG.Wait()
		if s.journal != nil {
			s.jobMu.Lock()
			// Every append fsynced before returning, so a close error at
			// shutdown cannot lose a record; nobody is left to observe it.
			_ = s.journal.close()
			s.journal = nil
			s.jobMu.Unlock()
		}
		close(s.writersDone)
	}()
}

// Close stops accepting jobs, drains every queue fully, and waits for the
// writer goroutines to exit. Safe to call more than once. Shutdown is the
// deadline-bounded form.
func (s *Server) Close() {
	//lteelint:ignore ctxflow Close is the undeadlined form; Shutdown accepts the caller's context
	s.Shutdown(context.Background())
}

// Shutdown stops accepting jobs and waits for the writers to drain their
// queues — dependency chains submitted before shutdown still run to
// completion. If ctx expires first, every still-pending or running
// cancellable job is cancelled (the running ingests unwind at their next
// cooperative checkpoint without committing), and Shutdown returns the
// context's error once the writers have exited. Safe to call more than
// once and concurrently.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.jobMu.Lock()
		s.closed = true
		s.maybeCloseQueuesLocked()
		s.jobMu.Unlock()
	})
	select {
	case <-s.writersDone:
		return nil
	case <-ctx.Done():
	}
	// Both channels may have been ready at once (select picks randomly):
	// a server whose writers already drained must report a clean shutdown
	// even under an expired context.
	select {
	case <-s.writersDone:
		return nil
	default:
	}
	s.CancelActiveJobs()
	<-s.writersDone
	return ctx.Err()
}

// CancelActiveJobs cancels every queued, dependency-waiting, or running
// cancellable job (ingests; snapshots are not cancellable) without
// shutting the server down: queued and waiting jobs complete as cancelled
// immediately (failing their dependents), and a running ingest unwinds at
// its next cooperative checkpoint, committing nothing. The shutdown path
// uses this when its drain grace expires so a final snapshot is not held
// hostage by in-flight work.
func (s *Server) CancelActiveJobs() {
	s.jobMu.Lock()
	// Snapshot the job set first: completing a job mutates s.jobs'
	// dependents links, and map iteration must not observe that.
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
	for _, j := range jobs {
		if j.cancel == nil || j.terminal() {
			continue
		}
		switch j.status {
		case statusQueued:
			s.completeJobLocked(j, statusCancelled, "cancelled while queued")
		case statusRunning:
			j.cancel()
		}
	}
	s.jobMu.Unlock()
}

// Snapshot synchronously persists the current state through the snapshot
// lane and returns the manifest. It is SnapshotCtx without a deadline.
func (s *Server) Snapshot() (kb.Manifest, error) {
	//lteelint:ignore ctxflow Snapshot is the undeadlined form; SnapshotCtx accepts the caller's context
	return s.SnapshotCtx(context.Background())
}

// SnapshotCtx synchronously persists the current state and returns the
// manifest. A momentarily full snapshot lane is retried until ctx
// expires — the shutdown path bounds this with its drain grace, so a
// packed queue can no longer spin the final snapshot forever.
func (s *Server) SnapshotCtx(ctx context.Context) (kb.Manifest, error) {
	if s.snapshotDir == "" {
		return kb.Manifest{}, errors.New("serve: no snapshot directory configured")
	}
	var j *job
	for {
		var err error
		j, err = s.enqueue(&job{kind: jobSnapshot})
		if err == nil {
			break
		}
		if !errors.Is(err, errQueueFull) {
			return kb.Manifest{}, err
		}
		select {
		case <-ctx.Done():
			return kb.Manifest{}, fmt.Errorf("serve: snapshot not enqueued: %w", ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return kb.Manifest{}, fmt.Errorf("serve: snapshot still pending: %w", ctx.Err())
	}
	v := s.viewJob(j)
	if v.Status != statusDone {
		return kb.Manifest{}, fmt.Errorf("serve: snapshot failed: %s", v.Error)
	}
	return *v.Manifest, nil
}

// ---- job execution ----

func (s *Server) runIngest(j *job) {
	// Ingests run under the read half of execMu: per-class writers
	// proceed in parallel with each other, never with a snapshot.
	s.execMu.RLock()
	defer s.execMu.RUnlock()
	// Admission control re-checked at execution time: a job enqueued just
	// before a predecessor poisoned the class must not run on the
	// corrupted engine state.
	s.jobMu.Lock()
	reason, bad := s.poisoned[j.class]
	s.jobMu.Unlock()
	if bad {
		s.completeJob(j, statusFailed,
			fmt.Sprintf("class refuses ingests after an engine panic: %s", reason))
		return
	}
	eng := s.engines[j.class]
	// IngestedIDs (not TableIDs) so tables restored from a snapshot count
	// as done: "auto" must keep advancing after a warm restart.
	ingested := make(map[int]bool)
	for _, id := range eng.IngestedIDs() {
		ingested[id] = true
	}
	ids := make([]int, 0, len(j.tables)+len(j.raw))
	for _, id := range j.tables {
		if s.corpus.Table(id) == nil {
			s.completeJob(j, statusFailed, fmt.Sprintf("unknown corpus table %d", id))
			return
		}
		ids = append(ids, id)
	}
	// Auto mode: the next j.auto not-yet-ingested classified tables.
	if j.auto > 0 {
		picked := 0
		for _, id := range s.tables[j.class] {
			if picked == j.auto {
				break
			}
			if !ingested[id] {
				ids = append(ids, id)
				picked++
			}
		}
	}
	// A batch that resolves to nothing new never reaches the engine: an
	// epoch re-runs entity creation and detection over everything retained,
	// so a no-op request must not be able to burn that work (or inflate
	// epoch counters) for free.
	fresh := false
	for _, id := range ids {
		if !ingested[id] {
			fresh = true
			break
		}
	}
	if !fresh && len(j.raw) == 0 {
		// TotalTables mirrors the engine's own stats semantics (tables in
		// the retained output, excluding Resume-restored ones) so the
		// counter never moves backwards between a no-op and a real epoch.
		stats := core.IngestStats{
			Epoch:       eng.Epoch(),
			TotalTables: len(eng.TableIDs()),
			KBInstances: s.kb.NumInstances(),
		}
		s.setJob(j, func(j *job) { j.stats = &stats })
		s.completeJob(j, statusDone, "")
		return
	}
	// Raw tables join the corpus on this class's writer goroutine; Append
	// is concurrent-safe against the other writers and corpus readers.
	preLen := s.corpus.Len()
	var rawIDs []int
	for _, t := range j.raw {
		id := s.corpus.Append(t)
		ids = append(ids, id)
		rawIDs = append(rawIDs, id)
	}
	if len(rawIDs) > 0 {
		// Journal the appended IDs so an interrupted job's report carries
		// them (the retry-by-ID contract within a process lifetime).
		s.jobMu.Lock()
		j.rawIDs = rawIDs
		s.journalTransitionLocked(jobRecord{ID: j.id, Status: statusRunning, RawIDs: rawIDs, Unix: s.now().Unix()})
		s.jobMu.Unlock()
	}
	// Contain an engine panic here rather than in executeJob's backstop:
	// when this job's appended raw tables are still the corpus tail (no
	// other class appended since), they are rolled back so a client retry
	// cannot duplicate them; either way the class is poisoned — the
	// engine's retained state can no longer be trusted, so further
	// ingests for this class are refused until a restart.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.corpus.TruncateIf(preLen, preLen+len(j.raw))
		s.jobMu.Lock()
		s.poisoned[j.class] = fmt.Sprintf("%v", r)
		s.jobMu.Unlock()
		s.completeJob(j, statusFailed,
			fmt.Sprintf("ingest panic (class now refuses ingests): %v", r))
	}()
	ctx := j.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	_, stats, err := eng.Ingest(ctx, ids)
	if err != nil {
		// A cancelled epoch committed nothing (the engine publishes
		// atomically at its end), so the class stays healthy — unlike a
		// panic, cancellation does not poison it. Appended raw tables are
		// NOT rolled back: the engine may already have absorbed their
		// labels into its persistent blocking/PHI statistics (keyed by
		// table ID), and truncating the corpus would rebind those IDs to
		// future tables with different content, corrupting later epochs.
		// The tables stay appended and un-ingested; a retry references
		// them by ID instead of re-uploading.
		rawMsg := ""
		if len(rawIDs) > 0 {
			rawMsg = fmt.Sprintf("; the %d uploaded raw tables remain appended as corpus IDs %v (not ingested) — retry with {\"tables\": %v}", len(rawIDs), rawIDs, rawIDs)
		}
		if errors.Is(err, context.Canceled) {
			s.completeJob(j, statusCancelled, "cancelled before completing; no epoch was committed"+rawMsg)
		} else {
			s.completeJob(j, statusFailed, err.Error()+rawMsg)
		}
		return
	}
	s.setJob(j, func(j *job) { j.stats = &stats })
	s.completeJob(j, statusDone, "")
}

func (s *Server) runSnapshot(j *job) {
	// Snapshots take the write half of execMu: every per-class writer is
	// quiesced, so the manifest's epoch/table bookkeeping and the KB
	// instance chain are pinned together.
	s.execMu.Lock()
	defer s.execMu.Unlock()
	meta := kb.Manifest{
		WorldKey: s.worldKey,
		Epochs:   make(map[string]int, len(s.engines)),
		Tables:   make(map[string][]int, len(s.engines)),
	}
	for class, eng := range s.engines {
		meta.Epochs[string(class)] = eng.Epoch()
		ids := make([]int, 0)
		for _, id := range eng.IngestedIDs() {
			if id < s.baseTables {
				ids = append(ids, id)
			}
		}
		meta.Tables[string(class)] = ids
	}
	m, err := s.kb.SaveSnapshot(s.snapshotDir, meta)
	if err != nil {
		s.completeJob(j, statusFailed, err.Error())
		return
	}
	// Each save appends one delta segment; fold the chain back into a
	// single segment once it is long enough that cold-start replay (and
	// the per-segment file overhead) starts to matter. Compaction failure
	// does not fail the job — the saved chain is already durable and
	// loadable — but it is surfaced in the job record.
	if s.compactAfter > 0 && len(m.Segments) >= s.compactAfter {
		cm, cerr := kb.CompactSnapshot(s.snapshotDir)
		if cerr != nil {
			s.setJob(j, func(j *job) { j.manifest = &m })
			s.completeJob(j, statusDone, fmt.Sprintf("snapshot saved, but compaction failed: %v", cerr))
			return
		}
		m = cm
	}
	s.setJob(j, func(j *job) { j.manifest = &m })
	s.completeJob(j, statusDone, "")
}
