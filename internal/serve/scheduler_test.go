package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/webtable"
	"repro/internal/world"
)

// gatedServer builds a single-class server whose engine parks at its
// first progress event until gate is closed, and signals on started once
// the parked job is actually executing. It lets tests hold a writer lane
// busy deterministically.
func gatedServer(t testing.TB, queueDepth int) (*Server, []int, func(), chan struct{}) {
	t.Helper()
	w, c, tables := fixture(t)
	cfg := core.DefaultConfig(w.KB, c, kb.ClassGFPlayer)
	cfg.Iterations = 1
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	cfg.Progress = func(core.Event) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
	}
	s, err := New(Config{
		KB:     w.KB,
		Corpus: c,
		Engines: map[kb.ClassID]*core.Engine{
			kb.ClassGFPlayer: core.NewEngine(cfg, core.Models{}),
		},
		QueueDepth: queueDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	closeGate := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(s.Close)
	t.Cleanup(closeGate) // unpark before Close drains
	return s, tables, closeGate, started
}

// waitForStatus polls a job until it reaches want (or the deadline).
func waitForStatus(t testing.TB, s *Server, id int64, want string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var jv JobView
		do(t, s, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", id), "", &jv)
		if jv.Status == want {
			return jv
		}
		if terminalStatus(jv.Status) || time.Now().After(deadline) {
			t.Fatalf("job %d = %+v, want status %q", id, jv, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeJobDependencies: "after" gates dispatch on successful
// completion, failures cascade to dependents with a descriptive error,
// unknown dependency IDs are client errors, and snapshots can be ordered
// after ingests.
func TestServeJobDependencies(t *testing.T) {
	dir := t.TempDir()
	s, tables := newTestServer(t, dir)

	j1 := ingestWait(t, s, tables[:1])

	// A dependent of a successful job runs normally.
	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[1:2], After: []int64{j1.ID}})
	var j2 JobView
	if code := do(t, s, http.MethodPost, "/v1/ingest?wait=1", string(body), &j2); code != 200 || j2.Status != statusDone {
		t.Fatalf("dependent ingest = %d %+v", code, j2)
	}
	if len(j2.After) != 1 || j2.After[0] != j1.ID {
		t.Errorf("dependent view after = %v, want [%d]", j2.After, j1.ID)
	}

	// A failed dependency fails its dependents without running them.
	var jBad JobView
	do(t, s, http.MethodPost, "/v1/ingest?wait=1", `{"class":"GF-Player","tables":[999999]}`, &jBad)
	if jBad.Status != statusFailed {
		t.Fatalf("bad ingest = %+v", jBad)
	}
	body, _ = json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[:1], After: []int64{jBad.ID}})
	var jDep JobView
	do(t, s, http.MethodPost, "/v1/ingest?wait=1", string(body), &jDep)
	if jDep.Status != statusFailed || !strings.Contains(jDep.Error, fmt.Sprintf("dependency job %d failed", jBad.ID)) {
		t.Fatalf("dependent of failed job = %+v", jDep)
	}

	// Unknown dependency IDs are a 400, not a queue slot.
	if code := do(t, s, http.MethodPost, "/v1/ingest", `{"class":"GF-Player","tables":[],"after":[987654]}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown dependency = %d, want 400", code)
	}

	// A snapshot can be ordered after an ingest.
	body, _ = json.Marshal(SnapshotRequest{After: []int64{j2.ID}})
	var jSnap JobView
	if code := do(t, s, http.MethodPost, "/v1/snapshot?wait=1", string(body), &jSnap); code != 200 || jSnap.Status != statusDone || jSnap.Manifest == nil {
		t.Fatalf("dependent snapshot = %d %+v", code, jSnap)
	}
}

// TestServeDependencyCancelCascade: cancelling a queued dependency fails
// the jobs waiting on it immediately, and the waitingOn view reflects the
// parked state while the dependency is live.
func TestServeDependencyCancelCascade(t *testing.T) {
	s, tables, closeGate, started := gatedServer(t, 8)

	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[:1]})
	var j1 JobView
	do(t, s, http.MethodPost, "/v1/ingest", string(body), &j1)
	<-started // j1 is executing, parked at its first progress event

	// j2 sits in the lane queue behind j1; j3 waits on j2.
	body, _ = json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[1:2]})
	var j2 JobView
	do(t, s, http.MethodPost, "/v1/ingest", string(body), &j2)
	body, _ = json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[:1], After: []int64{j2.ID}})
	var j3 JobView
	do(t, s, http.MethodPost, "/v1/ingest", string(body), &j3)
	if j3.Status != statusQueued || len(j3.WaitingOn) != 1 || j3.WaitingOn[0] != j2.ID {
		t.Fatalf("parked dependent = %+v", j3)
	}

	// Cancelling queued j2 must fail j3 on the spot.
	if code := do(t, s, http.MethodDelete, fmt.Sprintf("/v1/jobs/%d", j2.ID), "", nil); code != 200 {
		t.Fatalf("cancel queued job = %d", code)
	}
	var jv JobView
	do(t, s, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", j3.ID), "", &jv)
	if jv.Status != statusFailed || !strings.Contains(jv.Error, fmt.Sprintf("dependency job %d cancelled", j2.ID)) {
		t.Fatalf("dependent of cancelled job = %+v", jv)
	}

	closeGate()
	waitForStatus(t, s, j1.ID, statusDone)
}

// TestServeBackpressure429: a full writer lane rejects new jobs with
// 429 Too Many Requests and a Retry-After header — retryable
// backpressure, distinct from the 503 of a shut-down server — and
// accepts again once the lane drains.
func TestServeBackpressure429(t *testing.T) {
	s, tables, closeGate, started := gatedServer(t, 1)

	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[:1]})
	var j1 JobView
	do(t, s, http.MethodPost, "/v1/ingest", string(body), &j1)
	<-started // j1 occupies the writer, leaving the depth-1 queue empty

	var j2 JobView
	if code := do(t, s, http.MethodPost, "/v1/ingest", string(body), &j2); code != http.StatusAccepted {
		t.Fatalf("queued ingest = %d", code)
	}

	// The lane is now at capacity: reject with 429 + Retry-After.
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(string(body)))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full lane = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response is missing Retry-After")
	}

	closeGate()
	waitForStatus(t, s, j2.ID, statusDone)
	if code := do(t, s, http.MethodPost, "/v1/ingest", string(body), nil); code != http.StatusAccepted {
		t.Errorf("ingest after drain = %d, want 202", code)
	}
}

// normalizeEntities strips the fields legitimately affected by cross-class
// interleaving — matched instance IDs are assigned in write-back order —
// leaving the per-class pipeline output that must be deterministic.
func normalizeEntities(v EntitiesView) EntitiesView {
	for i := range v.Entities {
		v.Entities[i].Instance = nil
	}
	return v
}

// twoClassFixture builds a server over both served classes with serial
// (Workers=1) engines, so concurrency across classes is the only
// parallelism in play.
func twoClassFixture(t testing.TB) (*Server, map[kb.ClassID][]int) {
	t.Helper()
	w := world.Generate(world.DefaultConfig(0.2))
	c := webtable.Synthesize(w, webtable.DefaultSynthConfig(0.12))
	byClass, _ := core.ClassifyTables(t.Context(), w.KB, c, 0.3, 0)
	engines := make(map[kb.ClassID]*core.Engine, 2)
	tables := make(map[kb.ClassID][]int, 2)
	for _, class := range []kb.ClassID{kb.ClassGFPlayer, kb.ClassSong} {
		if len(byClass[class]) < 2 {
			t.Fatalf("fixture has %d tables for %s, need at least 2", len(byClass[class]), class)
		}
		cfg := core.DefaultConfig(w.KB, c, class)
		cfg.Iterations = 1
		cfg.Workers = 1
		engines[class] = core.NewEngine(cfg, core.Models{})
		tables[class] = byClass[class]
	}
	s, err := New(Config{KB: w.KB, Corpus: c, Engines: engines, Tables: tables})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, tables
}

// TestServeCrossClassConcurrentIngest: two classes ingest concurrently on
// their own writer lanes — wall-clock strictly below the sum of the same
// two ingests run serially — and each class's entity output is identical
// to the serial (single-writer-equivalent) baseline.
func TestServeCrossClassConcurrentIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}

	// Serial baseline: one class at a time, timed per class.
	serial, tables := twoClassFixture(t)
	ingestJSON := func(class kb.ClassID) string {
		body, _ := json.Marshal(IngestRequest{Class: string(class), Tables: tables[class]})
		return string(body)
	}
	start := time.Now()
	var jv JobView
	if code := do(t, serial, http.MethodPost, "/v1/ingest?wait=1", ingestJSON(kb.ClassGFPlayer), &jv); code != 200 || jv.Status != statusDone {
		t.Fatalf("serial GF-Player ingest = %d %+v", code, jv)
	}
	t1 := time.Since(start)
	start = time.Now()
	if code := do(t, serial, http.MethodPost, "/v1/ingest?wait=1", ingestJSON(kb.ClassSong), &jv); code != 200 || jv.Status != statusDone {
		t.Fatalf("serial Song ingest = %d %+v", code, jv)
	}
	t2 := time.Since(start)

	// Concurrent run over an identical fresh fixture: submit both, then
	// wait for both.
	conc, _ := twoClassFixture(t)
	start = time.Now()
	var jGF, jSong JobView
	if code := do(t, conc, http.MethodPost, "/v1/ingest", ingestJSON(kb.ClassGFPlayer), &jGF); code != http.StatusAccepted {
		t.Fatalf("concurrent GF-Player submit = %d", code)
	}
	if code := do(t, conc, http.MethodPost, "/v1/ingest", ingestJSON(kb.ClassSong), &jSong); code != http.StatusAccepted {
		t.Fatalf("concurrent Song submit = %d", code)
	}
	waitForStatus(t, conc, jGF.ID, statusDone)
	waitForStatus(t, conc, jSong.ID, statusDone)
	wall := time.Since(start)

	// The wall-clock claim needs real parallel hardware; correctness
	// (below) holds regardless.
	if runtime.NumCPU() >= 2 && wall >= t1+t2 {
		t.Errorf("concurrent ingest took %v, want strictly below serial sum %v (%v + %v)", wall, t1+t2, t1, t2)
	}
	t.Logf("serial %v + %v = %v; concurrent %v (%.2fx, %d CPUs)", t1, t2, t1+t2, wall, float64(t1+t2)/float64(wall), runtime.NumCPU())

	// Per-class outputs must match the serial baseline exactly (matched
	// instance IDs aside, which depend on write-back arrival order).
	for _, short := range []string{"GF-Player", "Song"} {
		var want, got EntitiesView
		do(t, serial, http.MethodGet, "/v1/classes/"+short+"/entities", "", &want)
		do(t, conc, http.MethodGet, "/v1/classes/"+short+"/entities", "", &got)
		w, _ := json.Marshal(normalizeEntities(want))
		g, _ := json.Marshal(normalizeEntities(got))
		if string(w) != string(g) {
			t.Errorf("%s entities diverge between serial and concurrent runs:\nserial:     %s\nconcurrent: %s", short, w, g)
		}
	}
}
