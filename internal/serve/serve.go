package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/webtable"
)

// Config assembles a server over a live KB, its corpus, and one
// incremental ingestion engine per served class.
type Config struct {
	KB     *kb.KB
	Corpus *webtable.Corpus
	// Engines maps each served class to its engine. Engines must be
	// freshly constructed (not yet ingested) when SnapshotDir warm-starts
	// them.
	Engines map[kb.ClassID]*core.Engine
	// Tables optionally lists the corpus tables matched to each class
	// (core.ClassifyTables output). It backs the ingest request's "auto"
	// mode, which ingests the next N not-yet-ingested tables of a class
	// without the client knowing corpus IDs.
	Tables map[kb.ClassID][]int
	// SnapshotDir enables snapshot persistence when non-empty: New loads
	// any existing snapshot from it, and POST /v1/snapshot saves into it.
	SnapshotDir string
	// WorldKey identifies the deterministic world this server was built
	// over (generation seed and scales, encoded by the caller). It is
	// stamped into snapshots and checked at warm start: discoveries made
	// against a different world must not be loaded onto this one.
	WorldKey string
	// CacheEntries bounds the response cache (default 1024; negative
	// disables caching).
	CacheEntries int
	// QueueDepth bounds each writer lane's pending jobs — one lane per
	// served class plus the snapshot lane — counting both buffered and
	// dependency-parked jobs (default 64). A full lane rejects with 429.
	QueueDepth int
	// CompactAfter triggers snapshot compaction when a save leaves the
	// segment chain at or beyond this many segments (default 8; negative
	// disables automatic compaction). Each save appends one delta segment,
	// so the chain — and cold-start replay — grows without it.
	CompactAfter int
	// JobTTL bounds how long finished job records stay queryable (and
	// journaled) after their terminal transition (default 15m; negative
	// disables eviction). It replaces the old fixed-count retention ring.
	JobTTL time.Duration
	// DisableJournal turns off job journaling even when SnapshotDir is
	// set; job records are then in-memory only and a restart reports no
	// interrupted jobs.
	DisableJournal bool
}

// Server is the HTTP serving layer. Construct with New, expose via
// Handler, and Close when done.
type Server struct {
	kb      *kb.KB
	corpus  *webtable.Corpus
	engines map[kb.ClassID]*core.Engine
	tables  map[kb.ClassID][]int
	// baseTables is the corpus length at construction: tables with IDs at
	// or beyond it were appended by inline raw ingests and do not exist in
	// a regenerated corpus, so snapshots must not record them as ingested.
	baseTables   int
	snapshotDir  string
	worldKey     string
	compactAfter int
	queueDepth   int
	jobTTL       time.Duration
	cache        *lruCache
	mux          *http.ServeMux
	// Warm holds the manifest loaded at startup (nil on a cold start).
	Warm *kb.Manifest

	// now is the scheduler's clock; tests substitute it (before submitting
	// any job) to drive TTL eviction deterministically.
	now func() time.Time

	jobMu   sync.Mutex
	jobs    map[int64]*job
	nextJob int64
	closed  bool
	// active counts jobs not yet terminal; shutdown closes the lanes only
	// once it reaches zero, so dependency chains admitted before shutdown
	// still drain fully.
	active int
	// evicted counts TTL evictions since the journal was last compacted.
	evicted int
	// running maps each lane (keyed by class; "" is the snapshot lane) to
	// the job it is executing right now; the engines' progress hooks
	// attribute their stage updates through it.
	running map[kb.ClassID]*job
	// poisoned records classes whose engine panicked mid-ingest; their
	// retained state can no longer be trusted, so further ingests for them
	// are refused until the process restarts.
	poisoned map[kb.ClassID]string
	// queuesClosed records that every lane channel has been closed.
	queuesClosed bool
	// journal persists job records under the snapshot directory (nil when
	// journaling is disabled or no directory is configured).
	journal *jobJournal

	// lanes holds one writer lane per served class; snapLane runs
	// snapshot jobs so they are never stuck behind a long ingest queue.
	lanes    map[kb.ClassID]*lane
	snapLane *lane

	// execMu serializes mutation against snapshots: ingests hold the read
	// half (so distinct classes proceed in parallel), snapshots take the
	// write half and run exclusively.
	execMu sync.RWMutex

	writersWG   sync.WaitGroup
	writersDone chan struct{}
	closeOnce   sync.Once
}

// JobView is the JSON rendering of a job. Stage is only set while the job
// is running and names the pipeline stage most recently entered
// ("i2/detect": detection during the epoch's second iteration). After
// lists the job's declared dependencies and WaitingOn the subset still
// unfinished. RawIDs are the corpus IDs the job's raw tables were
// appended under. Inputs echoes an ingest job's request — for an
// interrupted job it is exactly what the operator resubmits.
type JobView struct {
	ID        int64             `json:"id"`
	Kind      string            `json:"kind"`
	Class     string            `json:"class,omitempty"`
	Status    string            `json:"status"`
	Stage     string            `json:"stage,omitempty"`
	Error     string            `json:"error,omitempty"`
	After     []int64           `json:"after,omitempty"`
	WaitingOn []int64           `json:"waitingOn,omitempty"`
	RawIDs    []int             `json:"rawIds,omitempty"`
	Inputs    *JobInputsView    `json:"inputs,omitempty"`
	Stats     *core.IngestStats `json:"stats,omitempty"`
	Manifest  *kb.Manifest      `json:"manifest,omitempty"`
}

// JobInputsView echoes an ingest job's inputs. Raw payloads are retained
// only while the job is live and for interrupted jobs (resubmission);
// other finished jobs keep just the table IDs and auto count.
type JobInputsView struct {
	Tables []int      `json:"tables,omitempty"`
	Auto   int        `json:"auto,omitempty"`
	Raw    []RawTable `json:"raw,omitempty"`
}

// JobsView is the GET /v1/jobs response.
type JobsView struct {
	Jobs []JobView `json:"jobs"`
}

// New builds a server, warm-starts from the snapshot directory when one is
// configured and holds a snapshot (replaying the job journal so jobs cut
// short by the previous process are reported as interrupted), and starts
// one writer goroutine per served class plus the snapshot lane. Callers
// must Close the server to stop them.
func New(cfg Config) (*Server, error) {
	if cfg.KB == nil || cfg.Corpus == nil {
		return nil, errors.New("serve: Config needs a KB and a Corpus")
	}
	if len(cfg.Engines) == 0 {
		return nil, errors.New("serve: Config needs at least one class engine")
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CompactAfter == 0 {
		cfg.CompactAfter = 8
	}
	if cfg.JobTTL == 0 {
		cfg.JobTTL = 15 * time.Minute
	}
	s := &Server{
		kb:           cfg.KB,
		corpus:       cfg.Corpus,
		engines:      make(map[kb.ClassID]*core.Engine, len(cfg.Engines)),
		snapshotDir:  cfg.SnapshotDir,
		worldKey:     cfg.WorldKey,
		compactAfter: cfg.CompactAfter,
		queueDepth:   cfg.QueueDepth,
		jobTTL:       cfg.JobTTL,
		cache:        newLRUCache(cfg.CacheEntries),
		now:          time.Now,
		jobs:         make(map[int64]*job),
		running:      make(map[kb.ClassID]*job),
		poisoned:     make(map[kb.ClassID]string),
		lanes:        make(map[kb.ClassID]*lane, len(cfg.Engines)),
		writersDone:  make(chan struct{}),
	}
	for class, eng := range cfg.Engines {
		s.engines[class] = eng
		s.lanes[class] = &lane{class: class, q: make(chan *job, cfg.QueueDepth)}
		// Chain a progress hook onto the engine so an in-flight ingest
		// job's current stage is visible via GET /v1/jobs/{id}. Engines
		// are owned by the server once handed over, and a class's ingests
		// run only on its writer goroutine, so mutating Cfg here cannot
		// race.
		class := class
		prev := eng.Cfg.Progress
		eng.Cfg.Progress = func(ev core.Event) {
			s.noteStage(class, ev)
			if prev != nil {
				prev(ev)
			}
		}
	}
	s.snapLane = &lane{q: make(chan *job, cfg.QueueDepth)}
	s.baseTables = cfg.Corpus.Len()
	s.tables = make(map[kb.ClassID][]int, len(cfg.Tables))
	for class, ids := range cfg.Tables {
		s.tables[class] = append([]int(nil), ids...)
	}

	if s.snapshotDir != "" {
		m, err := s.kb.LoadSnapshot(s.snapshotDir)
		switch {
		case errors.Is(err, kb.ErrNoSnapshot):
			// Cold start; the first POST /v1/snapshot creates the files.
		case err != nil:
			return nil, fmt.Errorf("serve: warm start: %w", err)
		default:
			if m.WorldKey != "" && s.worldKey != "" && m.WorldKey != s.worldKey {
				return nil, fmt.Errorf("serve: snapshot was taken against world %q, this server runs %q — refusing to mix discoveries across worlds",
					m.WorldKey, s.worldKey)
			}
			s.Warm = &m
			for class, eng := range s.engines {
				if rerr := eng.Resume(m.Epochs[string(class)], m.Tables[string(class)]); rerr != nil {
					return nil, fmt.Errorf("serve: resuming %s: %w", class, rerr)
				}
			}
		}
	}
	if s.snapshotDir != "" && !cfg.DisableJournal {
		if err := s.loadJournal(); err != nil {
			return nil, fmt.Errorf("serve: job journal: %w", err)
		}
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/classes", s.handleClasses)
	s.mux.HandleFunc("GET /v1/classes/{class}/entities", s.handleEntities)
	s.mux.HandleFunc("GET /v1/instances/{id}", s.handleInstance)
	s.mux.HandleFunc("GET /v1/search", s.handleSearch)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)

	s.startWriters()
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) setJob(j *job, mutate func(*job)) {
	s.jobMu.Lock()
	mutate(j)
	s.jobMu.Unlock()
}

func (s *Server) viewJob(j *job) JobView {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	return s.viewJobLocked(j)
}

// InterruptedJobs lists the jobs the reloaded journal shows were cut off
// by an earlier crash, oldest first. Each carries the inputs to resubmit.
func (s *Server) InterruptedJobs() []JobView {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	var out []JobView
	for _, j := range s.jobs {
		if j.status == statusInterrupted {
			out = append(out, s.viewJobLocked(j))
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

func (s *Server) viewJobLocked(j *job) JobView {
	v := JobView{
		ID:     j.id,
		Kind:   j.kind,
		Status: j.status,
		Stage:  j.stage,
		Error:  j.errMsg,
		After:  append([]int64(nil), j.after...),
		RawIDs: append([]int(nil), j.rawIDs...),
	}
	if j.class != "" {
		v.Class = string(j.class)
	}
	if len(j.waitingOn) > 0 {
		v.WaitingOn = make([]int64, 0, len(j.waitingOn))
		for id := range j.waitingOn {
			v.WaitingOn = append(v.WaitingOn, id)
		}
		sort.Slice(v.WaitingOn, func(i, k int) bool { return v.WaitingOn[i] < v.WaitingOn[k] })
	}
	if j.kind == jobIngest && (len(j.tables) > 0 || j.auto > 0 || len(j.rawSpec) > 0) {
		v.Inputs = &JobInputsView{
			Tables: append([]int(nil), j.tables...),
			Auto:   j.auto,
			// rawSpec is immutable once set, so sharing the slice is safe.
			Raw: j.rawSpec,
		}
	}
	if j.stats != nil {
		st := *j.stats
		v.Stats = &st
	}
	if j.manifest != nil {
		m := *j.manifest
		v.Manifest = &m
	}
	return v
}

// ---- read endpoints ----

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ClassView is one served class in GET /v1/classes.
type ClassView struct {
	Class     string `json:"class"`
	ShortName string `json:"shortName"`
	Epoch     int    `json:"epoch"`
	// Tables counts the tables ingested so far; CorpusTables the classified
	// tables known to the server (the pool "auto" ingestion draws from).
	Tables       int `json:"tables"`
	CorpusTables int `json:"corpusTables"`
	KBInstances  int `json:"kbInstances"`
}

func (s *Server) handleClasses(w http.ResponseWriter, _ *http.Request) {
	classes := make([]kb.ClassID, 0, len(s.engines))
	for class := range s.engines {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	out := make([]ClassView, 0, len(classes))
	for _, class := range classes {
		epoch, tableIDs, _ := s.engines[class].Published()
		out = append(out, ClassView{
			Class:        string(class),
			ShortName:    kb.ClassShortName(class),
			Epoch:        epoch,
			Tables:       len(tableIDs),
			CorpusTables: len(s.tables[class]),
			KBInstances:  s.kb.NumInstancesOf(class),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// EntityView is one entity of a class's most recent epoch output.
// Instance is a pointer because 0 is a valid instance ID that omitempty
// on a plain int would silently drop.
type EntityView struct {
	Label    string              `json:"label"`
	Labels   []string            `json:"labels"`
	IsNew    bool                `json:"isNew"`
	Matched  bool                `json:"matched"`
	Instance *int                `json:"instance,omitempty"`
	Facts    map[string]FactView `json:"facts"`
}

// EntitiesView is the GET /v1/classes/{class}/entities response.
type EntitiesView struct {
	Class    string       `json:"class"`
	Epoch    int          `json:"epoch"`
	Entities []EntityView `json:"entities"`
}

// handleEntities lists the entities of the class's most recent ingest
// epoch (?new=1 restricts to entities classified as new). It reads the
// engine through LastEntities(), whose defensive copies are what make
// this safe while the writer loop runs a later epoch.
func (s *Server) handleEntities(w http.ResponseWriter, r *http.Request) {
	class, ok := s.resolveClass(r.PathValue("class"), true)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("class %q is not served", r.PathValue("class")))
		return
	}
	onlyNew := isTrue(r.URL.Query().Get("new"))
	// Cache the rendered body like the other read endpoints. kb.Version
	// alone is not a sufficient key — an epoch with zero write-backs
	// changes the output without touching the KB — so the epoch joins the
	// key.
	entitiesKey := func(epoch int) string {
		return fmt.Sprintf("e|%s|%v|%d", class, onlyNew, epoch)
	}
	version := s.kb.Version()
	if body, ok := s.cache.get("entities", version, entitiesKey(s.engines[class].Epoch())); ok {
		writeCached(w, http.StatusOK, body)
		return
	}
	ents, dets, epoch := s.engines[class].LastEntities()
	view := EntitiesView{Class: string(class), Epoch: epoch, Entities: []EntityView{}}
	for i, ent := range ents {
		det := dets[i]
		if onlyNew && !det.IsNew {
			continue
		}
		ev := EntityView{
			Label:   ent.Label(),
			Labels:  append([]string(nil), ent.Labels...),
			IsNew:   det.IsNew,
			Matched: det.Matched,
			Facts:   make(map[string]FactView, len(ent.Facts)),
		}
		if det.Matched {
			iid := int(det.Instance)
			ev.Instance = &iid
		}
		for pid, v := range ent.Facts {
			ev.Facts[string(pid)] = FactView{Kind: v.Kind.String(), Value: v.String()}
		}
		view.Entities = append(view.Entities, ev)
	}
	// Store under the epoch the render actually observed (it may have
	// advanced past the key probed above); the body is self-consistent.
	body := mustMarshal(view)
	s.cache.put(version, entitiesKey(epoch), body)
	writeCached(w, http.StatusOK, body)
}

// FactView renders one typed fact.
type FactView struct {
	Kind  string `json:"kind"`
	Value string `json:"value"`
}

// InstanceView is the JSON rendering of a KB instance.
type InstanceView struct {
	ID          int                 `json:"id"`
	Class       string              `json:"class"`
	Labels      []string            `json:"labels"`
	Abstract    string              `json:"abstract,omitempty"`
	Popularity  float64             `json:"popularity,omitempty"`
	Provenance  string              `json:"provenance,omitempty"`
	IngestEpoch int                 `json:"ingestEpoch,omitempty"`
	Facts       map[string]FactView `json:"facts"`
}

func (s *Server) handleInstance(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "instance ID must be an integer")
		return
	}
	version := s.kb.Version()
	key := "i|" + r.PathValue("id")
	if body, ok := s.cache.get("instances", version, key); ok {
		writeCached(w, http.StatusOK, body)
		return
	}
	in := s.kb.Instance(kb.InstanceID(id))
	if in == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no instance %d", id))
		return
	}
	view := InstanceView{
		ID:          int(in.ID),
		Class:       string(in.Class),
		Labels:      append([]string(nil), in.Labels...),
		Abstract:    in.Abstract,
		Popularity:  in.Popularity,
		Provenance:  in.Provenance,
		IngestEpoch: in.IngestEpoch,
		Facts:       make(map[string]FactView, len(in.Facts)),
	}
	for pid, v := range in.Facts {
		view.Facts[string(pid)] = FactView{Kind: v.Kind.String(), Value: v.String()}
	}
	body := mustMarshal(view)
	s.cache.put(version, key, body)
	writeCached(w, http.StatusOK, body)
}

// SearchHitView is one fuzzy search result.
type SearchHitView struct {
	ID         int     `json:"id"`
	Label      string  `json:"label"`
	Class      string  `json:"class"`
	Score      float64 `json:"score"`
	Provenance string  `json:"provenance,omitempty"`
}

// SearchView is the GET /v1/search response.
type SearchView struct {
	Query     string          `json:"query"`
	Class     string          `json:"class,omitempty"`
	KBVersion uint64          `json:"kbVersion"`
	Hits      []SearchHitView `json:"hits"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	var class kb.ClassID
	if name := r.URL.Query().Get("class"); name != "" {
		resolved, ok := s.resolveClass(name, false)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown class %q", name))
			return
		}
		class = resolved
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 100 {
			writeErr(w, http.StatusBadRequest, "k must be an integer in [1, 100]")
			return
		}
		k = n
	}
	version := s.kb.Version()
	key := fmt.Sprintf("s|%s|%d|%s", class, k, q)
	if body, ok := s.cache.get("search", version, key); ok {
		writeCached(w, http.StatusOK, body)
		return
	}
	hits, err := s.kb.SearchInstances(r.Context(), q, kb.CandidateOpts{K: k, Class: class})
	if err != nil {
		// The client went away mid-search; there is no one left to answer.
		return
	}
	view := SearchView{Query: q, Class: string(class), KBVersion: version, Hits: []SearchHitView{}}
	for _, h := range hits {
		hitClass := s.kb.InstanceClass(h.Instance)
		if hitClass == "" {
			continue
		}
		prov, _ := s.kb.InstanceProvenance(h.Instance)
		view.Hits = append(view.Hits, SearchHitView{
			ID:         int(h.Instance),
			Label:      s.kb.InstanceLabel(h.Instance),
			Class:      string(hitClass),
			Score:      h.Score,
			Provenance: prov,
		})
	}
	body := mustMarshal(view)
	s.cache.put(version, key, body)
	writeCached(w, http.StatusOK, body)
}

// CacheStatsView reports response-cache effectiveness, overall and broken
// down by read endpoint (entities, instances, search), so the hit rate of
// the fuzzy-search path is visible independently of lookups.
type CacheStatsView struct {
	Hits     uint64                       `json:"hits"`
	Misses   uint64                       `json:"misses"`
	Entries  int                          `json:"entries"`
	Capacity int                          `json:"capacity"`
	ByPath   map[string]EndpointStatsView `json:"byPath,omitempty"`
}

// EndpointStatsView is one endpoint's slice of the cache counters.
type EndpointStatsView struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// ClassStatsView is the per-class section of GET /v1/stats.
type ClassStatsView struct {
	Epoch   int                `json:"epoch"`
	Tables  int                `json:"tables"`
	History []core.IngestStats `json:"history"`
}

// ClassStorageView is one class's slice of the storage section.
type ClassStorageView struct {
	Instances int `json:"instances"`
	Facts     int `json:"facts"`
}

// StorageStatsView is the storage-health section of GET /v1/stats: the
// KB's columnar footprint plus the state of the snapshot segment chain.
type StorageStatsView struct {
	Instances int `json:"instances"`
	// Ingested counts pipeline write-backs (non-seed instances) — the
	// rows a delta snapshot could have to persist.
	Ingested int `json:"ingested"`
	// ApproxBytes estimates the resident bytes of instance storage
	// (columns, overflow maps, interned strings).
	ApproxBytes int64                       `json:"approxBytes"`
	Classes     map[string]ClassStorageView `json:"classes,omitempty"`
	// Segments counts the snapshot chain's files (0 before the first
	// save or without a snapshot directory); PersistedInstances is the
	// total across them. LastCompaction is the highest ingest epoch
	// folded into a compacted segment (0: never compacted).
	Segments           int `json:"segments,omitempty"`
	PersistedInstances int `json:"persistedInstances,omitempty"`
	LastCompaction     int `json:"lastCompaction,omitempty"`
}

// QueueStatsView is one writer lane's backpressure state: how many jobs
// are admitted but not yet running (buffered plus dependency-parked)
// against the lane's capacity, and whether a job is executing right now.
type QueueStatsView struct {
	Capacity int  `json:"capacity"`
	Queued   int  `json:"queued"`
	Running  bool `json:"running"`
}

// StatsView is the GET /v1/stats response.
type StatsView struct {
	KBVersion   uint64                    `json:"kbVersion"`
	KBInstances int                       `json:"kbInstances"`
	Cache       CacheStatsView            `json:"cache"`
	Classes     map[string]ClassStatsView `json:"classes"`
	Storage     StorageStatsView          `json:"storage"`
	Jobs        map[string]int            `json:"jobs"`
	// Queues reports each writer lane keyed by class, plus "snapshot".
	Queues map[string]QueueStatsView `json:"queues"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	view := StatsView{
		KBVersion:   s.kb.Version(),
		KBInstances: s.kb.NumInstances(),
		Classes:     make(map[string]ClassStatsView, len(s.engines)),
		Jobs:        map[string]int{},
	}
	hits, misses, entries := s.cache.stats()
	view.Cache = CacheStatsView{Hits: hits, Misses: misses, Entries: entries, Capacity: s.cache.cap}
	if byPath := s.cache.endpointStats(); len(byPath) > 0 {
		view.Cache.ByPath = make(map[string]EndpointStatsView, len(byPath))
		for ep, ec := range byPath {
			view.Cache.ByPath[ep] = EndpointStatsView{Hits: ec.hits, Misses: ec.misses}
		}
	}
	for class, eng := range s.engines {
		epoch, tableIDs, hist := eng.Published()
		if hist == nil {
			hist = []core.IngestStats{}
		}
		view.Classes[string(class)] = ClassStatsView{
			Epoch:   epoch,
			Tables:  len(tableIDs),
			History: hist,
		}
	}
	view.Storage = s.storageStats()
	view.Queues = make(map[string]QueueStatsView, len(s.lanes)+1)
	s.jobMu.Lock()
	for _, j := range s.jobs {
		view.Jobs[j.status]++
	}
	for class, ln := range s.lanes {
		view.Queues[string(class)] = QueueStatsView{
			Capacity: s.queueDepth,
			Queued:   ln.occupancy + ln.waiting,
			Running:  s.running[class] != nil,
		}
	}
	view.Queues["snapshot"] = QueueStatsView{
		Capacity: s.queueDepth,
		Queued:   s.snapLane.occupancy + s.snapLane.waiting,
		Running:  s.running[""] != nil,
	}
	s.jobMu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// storageStats merges the KB's columnar footprint with the snapshot
// directory's manifest. Reading the manifest per call is safe against a
// concurrent save: manifests are committed by atomic rename, so this
// sees either the previous chain or the new one, never a torn file.
func (s *Server) storageStats() StorageStatsView {
	st := s.kb.StorageStats()
	out := StorageStatsView{
		Instances:   st.Instances,
		Ingested:    st.Ingested,
		ApproxBytes: st.ApproxBytes,
	}
	if len(st.Classes) > 0 {
		out.Classes = make(map[string]ClassStorageView, len(st.Classes))
		for _, c := range st.Classes {
			out.Classes[string(c.Class)] = ClassStorageView{Instances: c.Instances, Facts: c.Facts}
		}
	}
	if s.snapshotDir != "" {
		if m, err := kb.ReadManifest(s.snapshotDir); err == nil {
			out.Segments = len(m.Segments)
			out.PersistedInstances = m.Instances
			out.LastCompaction = m.CompactedAt
		}
	}
	return out
}

// ---- write endpoints ----

// RawTable is an inline table in an ingest request. LabelCol is optional;
// unset means the pipeline's label-attribute detection decides.
type RawTable struct {
	Caption  string     `json:"caption,omitempty"`
	Headers  []string   `json:"headers"`
	Rows     [][]string `json:"rows"`
	LabelCol *int       `json:"labelCol,omitempty"`
}

// IngestRequest is the POST /v1/ingest body: a class plus any mix of
// corpus table IDs, an "auto" count (the next N not-yet-ingested tables
// the server has classified for the class), and inline raw tables. After
// optionally lists job IDs this ingest must run after: it dispatches only
// once all of them finished successfully, and fails without running if
// any of them fails, is cancelled, or was interrupted.
type IngestRequest struct {
	Class  string     `json:"class"`
	Tables []int      `json:"tables,omitempty"`
	Auto   int        `json:"auto,omitempty"`
	Raw    []RawTable `json:"raw,omitempty"`
	After  []int64    `json:"after,omitempty"`
}

// SnapshotRequest is the optional POST /v1/snapshot body. After has the
// same semantics as on IngestRequest.
type SnapshotRequest struct {
	After []int64 `json:"after,omitempty"`
}

// writeEnqueueErr maps an enqueue failure to its HTTP shape: a full lane
// is backpressure (429 with Retry-After — the client should retry, not
// fail over), an unknown dependency is a client error (400), and a server
// already shutting down is 503.
func writeEnqueueErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err.Error()+"; retry shortly")
	case errors.Is(err, errUnknownDep):
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	class, ok := s.resolveClass(req.Class, true)
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("class %q is not served", req.Class))
		return
	}
	s.jobMu.Lock()
	reason, bad := s.poisoned[class]
	s.jobMu.Unlock()
	if bad {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Sprintf("class %s refuses ingests after an engine panic (%s); restart the server", class, reason))
		return
	}
	raw := make([]*webtable.Table, 0, len(req.Raw))
	for i, rt := range req.Raw {
		t := &webtable.Table{
			Caption:  rt.Caption,
			Headers:  append([]string(nil), rt.Headers...),
			Cells:    rt.Rows,
			LabelCol: -1,
		}
		if rt.LabelCol != nil {
			if *rt.LabelCol < 0 || *rt.LabelCol >= len(rt.Headers) {
				writeErr(w, http.StatusBadRequest, fmt.Sprintf("raw table %d: labelCol %d out of range", i, *rt.LabelCol))
				return
			}
			t.LabelCol = *rt.LabelCol
		}
		if err := t.Validate(); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("raw table %d: %v", i, err))
			return
		}
		raw = append(raw, t)
	}
	if req.Auto < 0 {
		writeErr(w, http.StatusBadRequest, "auto must be non-negative")
		return
	}
	// The job's context is independent of the HTTP request's: an async
	// ingest must survive its submitting request. DELETE /v1/jobs/{id}
	// (and a deadline-expired Shutdown) cancel it.
	jctx, cancel := context.WithCancel(context.Background())
	j, err := s.enqueue(&job{
		kind:    jobIngest,
		class:   class,
		tables:  append([]int(nil), req.Tables...),
		auto:    req.Auto,
		raw:     raw,
		rawSpec: req.Raw,
		after:   append([]int64(nil), req.After...),
		ctx:     jctx,
		cancel:  cancel,
	})
	if err != nil {
		cancel()
		writeEnqueueErr(w, err)
		return
	}
	s.respondJob(w, r, j, http.StatusAccepted)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapshotDir == "" {
		writeErr(w, http.StatusConflict, "no snapshot directory configured")
		return
	}
	// The body is optional: a bare POST snapshots immediately, a JSON
	// body may order the snapshot after other jobs.
	var req SnapshotRequest
	if err := decodeBodyOptional(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	j, err := s.enqueue(&job{
		kind:  jobSnapshot,
		after: append([]int64(nil), req.After...),
	})
	if err != nil {
		writeEnqueueErr(w, err)
		return
	}
	s.respondJob(w, r, j, http.StatusAccepted)
}

// handleJobs lists retained jobs newest-first: GET /v1/jobs, optionally
// filtered by ?status= (comma-separated statuses) and bounded by ?limit=.
// Interrupted jobs — survivors of a previous process found in the job
// journal — appear here with their resubmittable inputs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	filter := make(map[string]bool)
	if raw := r.URL.Query().Get("status"); raw != "" {
		for _, st := range strings.Split(raw, ",") {
			st = strings.TrimSpace(st)
			if st == "" {
				continue
			}
			if !terminalStatus(st) && st != statusQueued && st != statusRunning {
				writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown status %q", st))
				return
			}
			filter[st] = true
		}
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	s.jobMu.Lock()
	s.evictExpiredLocked()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		if len(filter) > 0 && !filter[j.status] {
			continue
		}
		views = append(views, s.viewJobLocked(j))
	}
	s.jobMu.Unlock()
	sort.Slice(views, func(i, k int) bool { return views[i].ID > views[k].ID })
	if limit > 0 && len(views) > limit {
		views = views[:limit]
	}
	writeJSON(w, http.StatusOK, JobsView{Jobs: views})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "job ID must be an integer")
		return
	}
	s.jobMu.Lock()
	j := s.jobs[id]
	s.jobMu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, s.viewJob(j))
}

// handleJobCancel implements DELETE /v1/jobs/{id}: a queued job is marked
// cancelled and will be skipped by the writer; a running job has its
// context cancelled and unwinds at the engine's next cooperative
// checkpoint (poll GET /v1/jobs/{id}, or pass ?wait=1 to block until it
// has fully stopped). Finished jobs cannot be cancelled (409).
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "job ID must be an integer")
		return
	}
	s.jobMu.Lock()
	j := s.jobs[id]
	var status string
	cancellable := false
	if j != nil {
		status = j.status
		// Only jobs carrying a cancel func are cancellable (ingests);
		// snapshots are not, queued or running.
		cancellable = j.cancel != nil
		if status == statusQueued && cancellable {
			// Completes the job on the spot: a dependency-parked job is
			// unparked, dependents are failed, and its writer will skip
			// the queue entry when it reaches it.
			s.completeJobLocked(j, statusCancelled, "cancelled while queued")
		}
		// A running job's status flips to cancelled only once the engine
		// has actually unwound, so a poller never sees "cancelled" while
		// the writer is still inside Ingest.
	}
	s.jobMu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no job %d", id))
		return
	}
	if !cancellable && (status == statusQueued || status == statusRunning) {
		writeErr(w, http.StatusConflict, fmt.Sprintf("job %d (%s) cannot be cancelled", id, j.kind))
		return
	}
	switch status {
	case statusQueued:
		writeJSON(w, http.StatusOK, s.viewJob(j))
	case statusRunning:
		j.cancel()
		s.respondJob(w, r, j, http.StatusAccepted)
	default:
		writeErr(w, http.StatusConflict, fmt.Sprintf("job %d already finished (%s)", id, status))
	}
}

// respondJob renders a freshly enqueued job, waiting for completion first
// when the request carries ?wait=1 (capped by the request context).
func (s *Server) respondJob(w http.ResponseWriter, r *http.Request, j *job, code int) {
	if isTrue(r.URL.Query().Get("wait")) {
		select {
		case <-j.done:
			code = http.StatusOK
		case <-r.Context().Done():
			// Fall through and report the job as it currently is.
		}
	}
	writeJSON(w, code, s.viewJob(j))
}

// ---- helpers ----

// resolveClass maps a class ID or paper short name ("Song", "GF-Player")
// to a class; servedOnly restricts resolution to classes with engines.
func (s *Server) resolveClass(name string, servedOnly bool) (kb.ClassID, bool) {
	if id := kb.ClassID(name); s.kb.Class(id) != nil {
		if !servedOnly {
			return id, true
		}
		_, ok := s.engines[id]
		return id, ok
	}
	for _, class := range s.kb.Classes() {
		if !strings.EqualFold(kb.ClassShortName(class), name) {
			continue
		}
		if !servedOnly {
			return class, true
		}
		_, ok := s.engines[class]
		return class, ok
	}
	return "", false
}

// maxRequestBody caps POST bodies (inline raw tables included): a
// long-running server must not be OOM-able by one unbounded upload.
const maxRequestBody = 8 << 20

// decodeBody strictly decodes a JSON request body into dst, bounded by
// maxRequestBody.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

// decodeBodyOptional is decodeBody for endpoints whose body may be empty:
// an absent body leaves dst at its zero value.
func decodeBodyOptional(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	writeCached(w, code, mustMarshal(v))
}

func writeCached(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func mustMarshal(v any) []byte {
	body, err := json.Marshal(v)
	if err != nil {
		// Every view type here marshals by construction; an error is a
		// programming bug worth failing loudly on.
		panic(fmt.Sprintf("serve: marshaling response: %v", err))
	}
	return append(body, '\n')
}

func isTrue(v string) bool {
	return v == "1" || strings.EqualFold(v, "true")
}
