// Package serve exposes a live knowledge base over a long-running
// HTTP/JSON API: entity lookup by instance ID, fuzzy label search backed
// by the inverted label index, per-class/per-epoch ingestion statistics,
// and an asynchronous ingest endpoint that queues table batches through a
// single-writer ingest loop while reads stay lock-free on the
// concurrent-safe KB.
//
// # Concurrency model
//
// All mutation — engine ingestion, corpus appends, snapshot writes —
// happens on one writer goroutine consuming a job queue; POST /v1/ingest
// and POST /v1/snapshot enqueue jobs and return immediately (add ?wait=1
// to block until the job finishes). Read endpoints touch only structures
// that are safe under concurrent growth: the KB (RWMutex + monotonic
// Version), the engines' copy-returning accessors, and an LRU response
// cache keyed on kb.Version so hot lookups skip retrieval entirely and
// can never serve a pre-mutation body for a post-mutation version.
//
// # Cancellation
//
// Every ingest job carries its own context. DELETE /v1/jobs/{id} cancels
// it: a queued job is skipped by the writer, a running one unwinds at the
// engine's next cooperative checkpoint and ends with status "cancelled" —
// the epoch commits nothing, the engine stays healthy, and the class
// accepts further ingests (unlike a panic, which poisons it). While a job
// runs, GET /v1/jobs/{id} reports the pipeline stage it most recently
// entered, fed by the engines' progress events. Shutdown(ctx) extends the
// same mechanism to process exit: the queue drains until the deadline,
// then everything still pending or running is cancelled cooperatively.
//
// # Snapshot persistence
//
// With a snapshot directory configured, the server warm-starts by loading
// the instances earlier runs wrote back (kb.LoadSnapshot) and resuming
// each engine's epoch counter from the manifest, so discoveries survive a
// restart without re-ingesting their tables. POST /v1/snapshot persists
// the current state atomically (temp file + rename, manifest last).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/webtable"
)

// Config assembles a server over a live KB, its corpus, and one
// incremental ingestion engine per served class.
type Config struct {
	KB     *kb.KB
	Corpus *webtable.Corpus
	// Engines maps each served class to its engine. Engines must be
	// freshly constructed (not yet ingested) when SnapshotDir warm-starts
	// them.
	Engines map[kb.ClassID]*core.Engine
	// Tables optionally lists the corpus tables matched to each class
	// (core.ClassifyTables output). It backs the ingest request's "auto"
	// mode, which ingests the next N not-yet-ingested tables of a class
	// without the client knowing corpus IDs.
	Tables map[kb.ClassID][]int
	// SnapshotDir enables snapshot persistence when non-empty: New loads
	// any existing snapshot from it, and POST /v1/snapshot saves into it.
	SnapshotDir string
	// WorldKey identifies the deterministic world this server was built
	// over (generation seed and scales, encoded by the caller). It is
	// stamped into snapshots and checked at warm start: discoveries made
	// against a different world must not be loaded onto this one.
	WorldKey string
	// CacheEntries bounds the response cache (default 1024; negative
	// disables caching).
	CacheEntries int
	// QueueDepth bounds the pending ingest/snapshot job queue (default 64).
	QueueDepth int
	// CompactAfter triggers snapshot compaction when a save leaves the
	// segment chain at or beyond this many segments (default 8; negative
	// disables automatic compaction). Each save appends one delta segment,
	// so the chain — and cold-start replay — grows without it.
	CompactAfter int
}

// Server is the HTTP serving layer. Construct with New, expose via
// Handler, and Close when done.
type Server struct {
	kb      *kb.KB
	corpus  *webtable.Corpus
	engines map[kb.ClassID]*core.Engine
	tables  map[kb.ClassID][]int
	// baseTables is the corpus length at construction: tables with IDs at
	// or beyond it were appended by inline raw ingests and do not exist in
	// a regenerated corpus, so snapshots must not record them as ingested.
	baseTables   int
	snapshotDir  string
	worldKey     string
	compactAfter int
	cache       *lruCache
	mux         *http.ServeMux
	// Warm holds the manifest loaded at startup (nil on a cold start).
	Warm *kb.Manifest

	jobMu   sync.Mutex
	jobs    map[int64]*job
	retired []int64 // finished job IDs in completion order, oldest first
	nextJob int64
	closed  bool
	// current is the job the writer goroutine is executing right now; the
	// engines' progress hooks attribute their stage updates to it.
	current *job
	// poisoned records classes whose engine panicked mid-ingest; their
	// retained state can no longer be trusted, so further ingests for them
	// are refused until the process restarts.
	poisoned map[kb.ClassID]string

	queue      chan *job
	writerDone chan struct{}
	closeOnce  sync.Once
}

const (
	jobIngest   = "ingest"
	jobSnapshot = "snapshot"

	statusQueued    = "queued"
	statusRunning   = "running"
	statusDone      = "done"
	statusFailed    = "failed"
	statusCancelled = "cancelled"

	// maxRetainedJobs bounds how many finished jobs stay queryable via
	// GET /v1/jobs/{id}; older ones are evicted so a long-running server
	// does not leak a job record per request.
	maxRetainedJobs = 256
)

// job is one unit of single-writer work plus its externally visible state.
type job struct {
	// Mutable state, guarded by Server.jobMu.
	id       int64
	kind     string
	status   string
	stage    string // current pipeline stage while running (progress events)
	errMsg   string
	stats    *core.IngestStats
	manifest *kb.Manifest

	// Inputs, immutable after enqueue.
	class  kb.ClassID
	tables []int
	auto   int
	raw    []*webtable.Table

	// ctx is cancelled by DELETE /v1/jobs/{id} and by a deadline-expired
	// Shutdown; the engine's cooperative checkpoints observe it.
	ctx    context.Context
	cancel context.CancelFunc

	done chan struct{}
}

// JobView is the JSON rendering of a job. Stage is only set while the job
// is running and names the pipeline stage most recently entered
// ("i2/detect": detection during the epoch's second iteration).
type JobView struct {
	ID       int64             `json:"id"`
	Kind     string            `json:"kind"`
	Class    string            `json:"class,omitempty"`
	Status   string            `json:"status"`
	Stage    string            `json:"stage,omitempty"`
	Error    string            `json:"error,omitempty"`
	Stats    *core.IngestStats `json:"stats,omitempty"`
	Manifest *kb.Manifest      `json:"manifest,omitempty"`
}

// New builds a server, warm-starts from the snapshot directory when one is
// configured and holds a snapshot, and starts the single-writer ingest
// loop. Callers must Close the server to stop the loop.
func New(cfg Config) (*Server, error) {
	if cfg.KB == nil || cfg.Corpus == nil {
		return nil, errors.New("serve: Config needs a KB and a Corpus")
	}
	if len(cfg.Engines) == 0 {
		return nil, errors.New("serve: Config needs at least one class engine")
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CompactAfter == 0 {
		cfg.CompactAfter = 8
	}
	s := &Server{
		kb:           cfg.KB,
		corpus:       cfg.Corpus,
		engines:      make(map[kb.ClassID]*core.Engine, len(cfg.Engines)),
		snapshotDir:  cfg.SnapshotDir,
		worldKey:     cfg.WorldKey,
		compactAfter: cfg.CompactAfter,
		cache:        newLRUCache(cfg.CacheEntries),
		jobs:         make(map[int64]*job),
		poisoned:     make(map[kb.ClassID]string),
		queue:        make(chan *job, cfg.QueueDepth),
		writerDone:   make(chan struct{}),
	}
	for class, eng := range cfg.Engines {
		s.engines[class] = eng
		// Chain a progress hook onto the engine so an in-flight ingest
		// job's current stage is visible via GET /v1/jobs/{id}. Engines
		// are owned by the server once handed over, and ingests run only
		// on the writer goroutine, so mutating Cfg here cannot race.
		prev := eng.Cfg.Progress
		eng.Cfg.Progress = func(ev core.Event) {
			s.noteStage(ev)
			if prev != nil {
				prev(ev)
			}
		}
	}
	s.baseTables = cfg.Corpus.Len()
	s.tables = make(map[kb.ClassID][]int, len(cfg.Tables))
	for class, ids := range cfg.Tables {
		s.tables[class] = append([]int(nil), ids...)
	}

	if s.snapshotDir != "" {
		m, err := s.kb.LoadSnapshot(s.snapshotDir)
		switch {
		case errors.Is(err, kb.ErrNoSnapshot):
			// Cold start; the first POST /v1/snapshot creates the files.
		case err != nil:
			return nil, fmt.Errorf("serve: warm start: %w", err)
		default:
			if m.WorldKey != "" && s.worldKey != "" && m.WorldKey != s.worldKey {
				return nil, fmt.Errorf("serve: snapshot was taken against world %q, this server runs %q — refusing to mix discoveries across worlds",
					m.WorldKey, s.worldKey)
			}
			s.Warm = &m
			for class, eng := range s.engines {
				if rerr := eng.Resume(m.Epochs[string(class)], m.Tables[string(class)]); rerr != nil {
					return nil, fmt.Errorf("serve: resuming %s: %w", class, rerr)
				}
			}
		}
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/classes", s.handleClasses)
	s.mux.HandleFunc("GET /v1/classes/{class}/entities", s.handleEntities)
	s.mux.HandleFunc("GET /v1/instances/{id}", s.handleInstance)
	s.mux.HandleFunc("GET /v1/search", s.handleSearch)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)

	go s.writer()
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops accepting jobs, drains the queue fully, and waits for the
// writer loop to exit. Safe to call more than once. Shutdown is the
// deadline-bounded form.
func (s *Server) Close() {
	//lteelint:ignore ctxflow Close is the undeadlined form; Shutdown accepts the caller's context
	s.Shutdown(context.Background())
}

// Shutdown stops accepting jobs and waits for the writer loop to drain the
// queue. If ctx expires first, every still-pending or running job is
// cancelled — the running ingest unwinds at its next cooperative
// checkpoint without committing its epoch — and Shutdown returns the
// context's error once the writer has exited. Shutdown with a background
// context is exactly Close. Safe to call more than once and concurrently.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.jobMu.Lock()
		s.closed = true
		s.jobMu.Unlock()
		close(s.queue)
	})
	select {
	case <-s.writerDone:
		return nil
	case <-ctx.Done():
	}
	// Both channels may have been ready at once (select picks randomly):
	// a server whose writer already drained must report a clean shutdown
	// even under an expired context.
	select {
	case <-s.writerDone:
		return nil
	default:
	}
	// Deadline expired with work still in flight: cancel everything the
	// writer has not finished — queued jobs are marked cancelled so the
	// writer skips them outright (a queued raw-table ingest must not get
	// to mutate the corpus mid-shutdown), the running one unwinds at its
	// next checkpoint — then wait for the writer to exit (bounded by the
	// engine's checkpoint interval, not by remaining queue depth).
	s.CancelActiveJobs()
	<-s.writerDone
	return ctx.Err()
}

// CancelActiveJobs cancels every queued or running cancellable job
// (ingests; snapshots are not cancellable) without shutting the server
// down: the writer skips the cancelled queue entries and a running ingest
// unwinds at its next cooperative checkpoint, committing nothing. The
// shutdown path uses this to free the single-writer queue for a final
// Snapshot when its drain grace expires — closing the server instead
// would fail a Snapshot still waiting for a queue slot.
func (s *Server) CancelActiveJobs() {
	s.jobMu.Lock()
	for _, j := range s.jobs {
		if j.cancel == nil {
			continue
		}
		switch j.status {
		case statusQueued:
			j.status = statusCancelled
			j.errMsg = "cancelled while queued"
			j.cancel()
		case statusRunning:
			j.cancel()
		}
	}
	s.jobMu.Unlock()
}

// Snapshot synchronously persists the current state through the writer
// loop (so it never interleaves with an ingest) and returns the manifest.
// A momentarily full job queue is retried while the writer drains it —
// the shutdown path must not lose the final snapshot to pending ingests
// that are about to complete anyway.
func (s *Server) Snapshot() (kb.Manifest, error) {
	if s.snapshotDir == "" {
		return kb.Manifest{}, errors.New("serve: no snapshot directory configured")
	}
	var j *job
	for {
		var err error
		j, err = s.enqueue(&job{kind: jobSnapshot})
		if err == nil {
			break
		}
		if !errors.Is(err, errQueueFull) {
			return kb.Manifest{}, err
		}
		time.Sleep(20 * time.Millisecond)
	}
	<-j.done
	v := s.viewJob(j)
	if v.Status != statusDone {
		return kb.Manifest{}, fmt.Errorf("serve: snapshot failed: %s", v.Error)
	}
	return *v.Manifest, nil
}

// ---- single-writer loop ----

func (s *Server) writer() {
	defer close(s.writerDone)
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job on the writer goroutine. A panic escaping the
// engine (the crash vector a degenerate user batch could open) fails the
// job instead of taking the server down. Jobs cancelled while still queued
// are skipped entirely.
func (s *Server) runJob(j *job) {
	s.jobMu.Lock()
	if j.status == statusCancelled {
		s.jobMu.Unlock()
		s.retireJob(j)
		close(j.done)
		return
	}
	j.status = statusRunning
	s.current = j
	s.jobMu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			s.setJob(j, func(j *job) {
				j.status = statusFailed
				j.errMsg = fmt.Sprintf("panic: %v", r)
			})
		}
		s.jobMu.Lock()
		s.current = nil
		j.stage = ""
		s.jobMu.Unlock()
		if j.cancel != nil {
			j.cancel() // release the context's resources
		}
		s.retireJob(j)
		close(j.done)
	}()
	switch j.kind {
	case jobIngest:
		s.runIngest(j)
	case jobSnapshot:
		s.runSnapshot(j)
	}
}

// noteStage records the pipeline stage an in-flight ingest just entered,
// for GET /v1/jobs/{id}. Called from the engines' progress hooks, which
// fire on the writer goroutine while s.current is set.
func (s *Server) noteStage(ev core.Event) {
	s.jobMu.Lock()
	if s.current != nil {
		if ev.Iteration > 0 {
			s.current.stage = fmt.Sprintf("i%d/%s", ev.Iteration, ev.Stage)
		} else {
			s.current.stage = string(ev.Stage)
		}
	}
	s.jobMu.Unlock()
}

// retireJob frees a finished job's inputs (raw table payloads can be
// large) and evicts the oldest finished jobs beyond the retention bound.
func (s *Server) retireJob(j *job) {
	s.jobMu.Lock()
	j.tables = nil
	j.raw = nil
	s.retired = append(s.retired, j.id)
	for len(s.retired) > maxRetainedJobs {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
	s.jobMu.Unlock()
}

func (s *Server) runIngest(j *job) {
	// Admission control re-checked at execution time: a job enqueued just
	// before a predecessor poisoned the class must not run on the
	// corrupted engine state.
	s.jobMu.Lock()
	reason, bad := s.poisoned[j.class]
	s.jobMu.Unlock()
	if bad {
		s.setJob(j, func(j *job) {
			j.status = statusFailed
			j.errMsg = fmt.Sprintf("class refuses ingests after an engine panic: %s", reason)
		})
		return
	}
	eng := s.engines[j.class]
	// IngestedIDs (not TableIDs) so tables restored from a snapshot count
	// as done: "auto" must keep advancing after a warm restart.
	ingested := make(map[int]bool)
	for _, id := range eng.IngestedIDs() {
		ingested[id] = true
	}
	ids := make([]int, 0, len(j.tables)+len(j.raw))
	for _, id := range j.tables {
		if s.corpus.Table(id) == nil {
			s.setJob(j, func(j *job) {
				j.status = statusFailed
				j.errMsg = fmt.Sprintf("unknown corpus table %d", id)
			})
			return
		}
		ids = append(ids, id)
	}
	// Auto mode: the next j.auto not-yet-ingested classified tables.
	if j.auto > 0 {
		picked := 0
		for _, id := range s.tables[j.class] {
			if picked == j.auto {
				break
			}
			if !ingested[id] {
				ids = append(ids, id)
				picked++
			}
		}
	}
	// A batch that resolves to nothing new never reaches the engine: an
	// epoch re-runs entity creation and detection over everything retained,
	// so a no-op request must not be able to burn that work (or inflate
	// epoch counters) for free.
	fresh := false
	for _, id := range ids {
		if !ingested[id] {
			fresh = true
			break
		}
	}
	if !fresh && len(j.raw) == 0 {
		// TotalTables mirrors the engine's own stats semantics (tables in
		// the retained output, excluding Resume-restored ones) so the
		// counter never moves backwards between a no-op and a real epoch.
		stats := core.IngestStats{
			Epoch:       eng.Epoch(),
			TotalTables: len(eng.TableIDs()),
			KBInstances: s.kb.NumInstances(),
		}
		s.setJob(j, func(j *job) {
			j.status = statusDone
			j.stats = &stats
		})
		return
	}
	// Raw tables join the corpus only on the writer goroutine: Append is
	// not safe against concurrent readers, and no read endpoint touches
	// the corpus.
	preLen := s.corpus.Len()
	for _, t := range j.raw {
		ids = append(ids, s.corpus.Append(t))
	}
	// Contain an engine panic here rather than in runJob's backstop: the
	// appended raw tables are rolled back so a client retry cannot
	// duplicate them, and the class is poisoned — the engine's retained
	// state (and the rolled-back table IDs it may have absorbed into its
	// blocking/PHI statistics) can no longer be trusted, so further
	// ingests for this class are refused until a restart.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.corpus.Tables = s.corpus.Tables[:preLen]
		s.jobMu.Lock()
		s.poisoned[j.class] = fmt.Sprintf("%v", r)
		s.jobMu.Unlock()
		s.setJob(j, func(j *job) {
			j.status = statusFailed
			j.errMsg = fmt.Sprintf("ingest panic (class now refuses ingests): %v", r)
		})
	}()
	ctx := j.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	_, stats, err := eng.Ingest(ctx, ids)
	if err != nil {
		// A cancelled epoch committed nothing (the engine publishes
		// atomically at its end), so the class stays healthy — unlike a
		// panic, cancellation does not poison it. Appended raw tables are
		// NOT rolled back: the engine may already have absorbed their
		// labels into its persistent blocking/PHI statistics (keyed by
		// table ID), and truncating the corpus would rebind those IDs to
		// future tables with different content, corrupting later epochs.
		// The tables stay appended and un-ingested; a retry references
		// them by ID instead of re-uploading.
		rawMsg := ""
		if len(j.raw) > 0 {
			rawIDs := ids[len(ids)-len(j.raw):]
			rawMsg = fmt.Sprintf("; the %d uploaded raw tables remain appended as corpus IDs %v (not ingested) — retry with {\"tables\": %v}", len(j.raw), rawIDs, rawIDs)
		}
		s.setJob(j, func(j *job) {
			if errors.Is(err, context.Canceled) {
				j.status = statusCancelled
				j.errMsg = "cancelled before completing; no epoch was committed" + rawMsg
			} else {
				j.status = statusFailed
				j.errMsg = err.Error() + rawMsg
			}
		})
		return
	}
	s.setJob(j, func(j *job) {
		j.status = statusDone
		j.stats = &stats
	})
}

func (s *Server) runSnapshot(j *job) {
	meta := kb.Manifest{
		WorldKey: s.worldKey,
		Epochs:   make(map[string]int, len(s.engines)),
		Tables:   make(map[string][]int, len(s.engines)),
	}
	for class, eng := range s.engines {
		meta.Epochs[string(class)] = eng.Epoch()
		ids := make([]int, 0)
		for _, id := range eng.IngestedIDs() {
			if id < s.baseTables {
				ids = append(ids, id)
			}
		}
		meta.Tables[string(class)] = ids
	}
	m, err := s.kb.SaveSnapshot(s.snapshotDir, meta)
	if err != nil {
		s.setJob(j, func(j *job) {
			j.status = statusFailed
			j.errMsg = err.Error()
		})
		return
	}
	// Each save appends one delta segment; fold the chain back into a
	// single segment once it is long enough that cold-start replay (and
	// the per-segment file overhead) starts to matter. Compaction failure
	// does not fail the job — the saved chain is already durable and
	// loadable — but it is surfaced in the job record.
	if s.compactAfter > 0 && len(m.Segments) >= s.compactAfter {
		cm, cerr := kb.CompactSnapshot(s.snapshotDir)
		if cerr != nil {
			s.setJob(j, func(j *job) {
				j.status = statusDone
				j.manifest = &m
				j.errMsg = fmt.Sprintf("snapshot saved, but compaction failed: %v", cerr)
			})
			return
		}
		m = cm
	}
	s.setJob(j, func(j *job) {
		j.status = statusDone
		j.manifest = &m
	})
}

// ---- job bookkeeping ----

// enqueue registers a job and submits it to the writer loop.
func (s *Server) enqueue(j *job) (*job, error) {
	j.done = make(chan struct{})
	s.jobMu.Lock()
	if s.closed {
		s.jobMu.Unlock()
		return nil, errors.New("serve: server is shut down")
	}
	s.nextJob++
	j.id = s.nextJob
	j.status = statusQueued
	s.jobs[j.id] = j
	// Submit while still holding jobMu: Close sets closed and closes the
	// queue under the same lock order, so the send cannot race a close.
	select {
	case s.queue <- j:
		s.jobMu.Unlock()
		return j, nil
	default:
		delete(s.jobs, j.id)
		s.jobMu.Unlock()
		return nil, errQueueFull
	}
}

// errQueueFull distinguishes backpressure (retryable) from shutdown.
var errQueueFull = errors.New("serve: ingest queue is full")

func (s *Server) setJob(j *job, mutate func(*job)) {
	s.jobMu.Lock()
	mutate(j)
	s.jobMu.Unlock()
}

func (s *Server) viewJob(j *job) JobView {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	v := JobView{
		ID:     j.id,
		Kind:   j.kind,
		Status: j.status,
		Stage:  j.stage,
		Error:  j.errMsg,
	}
	if j.class != "" {
		v.Class = string(j.class)
	}
	if j.stats != nil {
		st := *j.stats
		v.Stats = &st
	}
	if j.manifest != nil {
		m := *j.manifest
		v.Manifest = &m
	}
	return v
}

// ---- read endpoints ----

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ClassView is one served class in GET /v1/classes.
type ClassView struct {
	Class     string `json:"class"`
	ShortName string `json:"shortName"`
	Epoch     int    `json:"epoch"`
	// Tables counts the tables ingested so far; CorpusTables the classified
	// tables known to the server (the pool "auto" ingestion draws from).
	Tables       int `json:"tables"`
	CorpusTables int `json:"corpusTables"`
	KBInstances  int `json:"kbInstances"`
}

func (s *Server) handleClasses(w http.ResponseWriter, _ *http.Request) {
	classes := make([]kb.ClassID, 0, len(s.engines))
	for class := range s.engines {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	out := make([]ClassView, 0, len(classes))
	for _, class := range classes {
		epoch, tableIDs, _ := s.engines[class].Published()
		out = append(out, ClassView{
			Class:        string(class),
			ShortName:    kb.ClassShortName(class),
			Epoch:        epoch,
			Tables:       len(tableIDs),
			CorpusTables: len(s.tables[class]),
			KBInstances:  s.kb.NumInstancesOf(class),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// EntityView is one entity of a class's most recent epoch output.
// Instance is a pointer because 0 is a valid instance ID that omitempty
// on a plain int would silently drop.
type EntityView struct {
	Label    string              `json:"label"`
	Labels   []string            `json:"labels"`
	IsNew    bool                `json:"isNew"`
	Matched  bool                `json:"matched"`
	Instance *int                `json:"instance,omitempty"`
	Facts    map[string]FactView `json:"facts"`
}

// EntitiesView is the GET /v1/classes/{class}/entities response.
type EntitiesView struct {
	Class    string       `json:"class"`
	Epoch    int          `json:"epoch"`
	Entities []EntityView `json:"entities"`
}

// handleEntities lists the entities of the class's most recent ingest
// epoch (?new=1 restricts to entities classified as new). It reads the
// engine through LastEntities(), whose defensive copies are what make
// this safe while the writer loop runs a later epoch.
func (s *Server) handleEntities(w http.ResponseWriter, r *http.Request) {
	class, ok := s.resolveClass(r.PathValue("class"), true)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("class %q is not served", r.PathValue("class")))
		return
	}
	onlyNew := isTrue(r.URL.Query().Get("new"))
	// Cache the rendered body like the other read endpoints. kb.Version
	// alone is not a sufficient key — an epoch with zero write-backs
	// changes the output without touching the KB — so the epoch joins the
	// key.
	entitiesKey := func(epoch int) string {
		return fmt.Sprintf("e|%s|%v|%d", class, onlyNew, epoch)
	}
	version := s.kb.Version()
	if body, ok := s.cache.get("entities", version, entitiesKey(s.engines[class].Epoch())); ok {
		writeCached(w, http.StatusOK, body)
		return
	}
	ents, dets, epoch := s.engines[class].LastEntities()
	view := EntitiesView{Class: string(class), Epoch: epoch, Entities: []EntityView{}}
	for i, ent := range ents {
		det := dets[i]
		if onlyNew && !det.IsNew {
			continue
		}
		ev := EntityView{
			Label:   ent.Label(),
			Labels:  append([]string(nil), ent.Labels...),
			IsNew:   det.IsNew,
			Matched: det.Matched,
			Facts:   make(map[string]FactView, len(ent.Facts)),
		}
		if det.Matched {
			iid := int(det.Instance)
			ev.Instance = &iid
		}
		for pid, v := range ent.Facts {
			ev.Facts[string(pid)] = FactView{Kind: v.Kind.String(), Value: v.String()}
		}
		view.Entities = append(view.Entities, ev)
	}
	// Store under the epoch the render actually observed (it may have
	// advanced past the key probed above); the body is self-consistent.
	body := mustMarshal(view)
	s.cache.put(version, entitiesKey(epoch), body)
	writeCached(w, http.StatusOK, body)
}

// FactView renders one typed fact.
type FactView struct {
	Kind  string `json:"kind"`
	Value string `json:"value"`
}

// InstanceView is the JSON rendering of a KB instance.
type InstanceView struct {
	ID          int                 `json:"id"`
	Class       string              `json:"class"`
	Labels      []string            `json:"labels"`
	Abstract    string              `json:"abstract,omitempty"`
	Popularity  float64             `json:"popularity,omitempty"`
	Provenance  string              `json:"provenance,omitempty"`
	IngestEpoch int                 `json:"ingestEpoch,omitempty"`
	Facts       map[string]FactView `json:"facts"`
}

func (s *Server) handleInstance(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "instance ID must be an integer")
		return
	}
	version := s.kb.Version()
	key := "i|" + r.PathValue("id")
	if body, ok := s.cache.get("instances", version, key); ok {
		writeCached(w, http.StatusOK, body)
		return
	}
	in := s.kb.Instance(kb.InstanceID(id))
	if in == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no instance %d", id))
		return
	}
	view := InstanceView{
		ID:          int(in.ID),
		Class:       string(in.Class),
		Labels:      append([]string(nil), in.Labels...),
		Abstract:    in.Abstract,
		Popularity:  in.Popularity,
		Provenance:  in.Provenance,
		IngestEpoch: in.IngestEpoch,
		Facts:       make(map[string]FactView, len(in.Facts)),
	}
	for pid, v := range in.Facts {
		view.Facts[string(pid)] = FactView{Kind: v.Kind.String(), Value: v.String()}
	}
	body := mustMarshal(view)
	s.cache.put(version, key, body)
	writeCached(w, http.StatusOK, body)
}

// SearchHitView is one fuzzy search result.
type SearchHitView struct {
	ID         int     `json:"id"`
	Label      string  `json:"label"`
	Class      string  `json:"class"`
	Score      float64 `json:"score"`
	Provenance string  `json:"provenance,omitempty"`
}

// SearchView is the GET /v1/search response.
type SearchView struct {
	Query     string          `json:"query"`
	Class     string          `json:"class,omitempty"`
	KBVersion uint64          `json:"kbVersion"`
	Hits      []SearchHitView `json:"hits"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	var class kb.ClassID
	if name := r.URL.Query().Get("class"); name != "" {
		resolved, ok := s.resolveClass(name, false)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown class %q", name))
			return
		}
		class = resolved
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 100 {
			writeErr(w, http.StatusBadRequest, "k must be an integer in [1, 100]")
			return
		}
		k = n
	}
	version := s.kb.Version()
	key := fmt.Sprintf("s|%s|%d|%s", class, k, q)
	if body, ok := s.cache.get("search", version, key); ok {
		writeCached(w, http.StatusOK, body)
		return
	}
	hits, err := s.kb.SearchInstances(r.Context(), q, kb.CandidateOpts{K: k, Class: class})
	if err != nil {
		// The client went away mid-search; there is no one left to answer.
		return
	}
	view := SearchView{Query: q, Class: string(class), KBVersion: version, Hits: []SearchHitView{}}
	for _, h := range hits {
		hitClass := s.kb.InstanceClass(h.Instance)
		if hitClass == "" {
			continue
		}
		prov, _ := s.kb.InstanceProvenance(h.Instance)
		view.Hits = append(view.Hits, SearchHitView{
			ID:         int(h.Instance),
			Label:      s.kb.InstanceLabel(h.Instance),
			Class:      string(hitClass),
			Score:      h.Score,
			Provenance: prov,
		})
	}
	body := mustMarshal(view)
	s.cache.put(version, key, body)
	writeCached(w, http.StatusOK, body)
}

// CacheStatsView reports response-cache effectiveness, overall and broken
// down by read endpoint (entities, instances, search), so the hit rate of
// the fuzzy-search path is visible independently of lookups.
type CacheStatsView struct {
	Hits     uint64                       `json:"hits"`
	Misses   uint64                       `json:"misses"`
	Entries  int                          `json:"entries"`
	Capacity int                          `json:"capacity"`
	ByPath   map[string]EndpointStatsView `json:"byPath,omitempty"`
}

// EndpointStatsView is one endpoint's slice of the cache counters.
type EndpointStatsView struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// ClassStatsView is the per-class section of GET /v1/stats.
type ClassStatsView struct {
	Epoch   int                `json:"epoch"`
	Tables  int                `json:"tables"`
	History []core.IngestStats `json:"history"`
}

// ClassStorageView is one class's slice of the storage section.
type ClassStorageView struct {
	Instances int `json:"instances"`
	Facts     int `json:"facts"`
}

// StorageStatsView is the storage-health section of GET /v1/stats: the
// KB's columnar footprint plus the state of the snapshot segment chain.
type StorageStatsView struct {
	Instances int `json:"instances"`
	// Ingested counts pipeline write-backs (non-seed instances) — the
	// rows a delta snapshot could have to persist.
	Ingested int `json:"ingested"`
	// ApproxBytes estimates the resident bytes of instance storage
	// (columns, overflow maps, interned strings).
	ApproxBytes int64                       `json:"approxBytes"`
	Classes     map[string]ClassStorageView `json:"classes,omitempty"`
	// Segments counts the snapshot chain's files (0 before the first
	// save or without a snapshot directory); PersistedInstances is the
	// total across them. LastCompaction is the highest ingest epoch
	// folded into a compacted segment (0: never compacted).
	Segments           int `json:"segments,omitempty"`
	PersistedInstances int `json:"persistedInstances,omitempty"`
	LastCompaction     int `json:"lastCompaction,omitempty"`
}

// StatsView is the GET /v1/stats response.
type StatsView struct {
	KBVersion   uint64                    `json:"kbVersion"`
	KBInstances int                       `json:"kbInstances"`
	Cache       CacheStatsView            `json:"cache"`
	Classes     map[string]ClassStatsView `json:"classes"`
	Storage     StorageStatsView          `json:"storage"`
	Jobs        map[string]int            `json:"jobs"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	view := StatsView{
		KBVersion:   s.kb.Version(),
		KBInstances: s.kb.NumInstances(),
		Classes:     make(map[string]ClassStatsView, len(s.engines)),
		Jobs:        map[string]int{},
	}
	hits, misses, entries := s.cache.stats()
	view.Cache = CacheStatsView{Hits: hits, Misses: misses, Entries: entries, Capacity: s.cache.cap}
	if byPath := s.cache.endpointStats(); len(byPath) > 0 {
		view.Cache.ByPath = make(map[string]EndpointStatsView, len(byPath))
		for ep, ec := range byPath {
			view.Cache.ByPath[ep] = EndpointStatsView{Hits: ec.hits, Misses: ec.misses}
		}
	}
	for class, eng := range s.engines {
		epoch, tableIDs, hist := eng.Published()
		if hist == nil {
			hist = []core.IngestStats{}
		}
		view.Classes[string(class)] = ClassStatsView{
			Epoch:   epoch,
			Tables:  len(tableIDs),
			History: hist,
		}
	}
	view.Storage = s.storageStats()
	s.jobMu.Lock()
	for _, j := range s.jobs {
		view.Jobs[j.status]++
	}
	s.jobMu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// storageStats merges the KB's columnar footprint with the snapshot
// directory's manifest. Reading the manifest per call is safe against a
// concurrent save: manifests are committed by atomic rename, so this
// sees either the previous chain or the new one, never a torn file.
func (s *Server) storageStats() StorageStatsView {
	st := s.kb.StorageStats()
	out := StorageStatsView{
		Instances:   st.Instances,
		Ingested:    st.Ingested,
		ApproxBytes: st.ApproxBytes,
	}
	if len(st.Classes) > 0 {
		out.Classes = make(map[string]ClassStorageView, len(st.Classes))
		for _, c := range st.Classes {
			out.Classes[string(c.Class)] = ClassStorageView{Instances: c.Instances, Facts: c.Facts}
		}
	}
	if s.snapshotDir != "" {
		if m, err := kb.ReadManifest(s.snapshotDir); err == nil {
			out.Segments = len(m.Segments)
			out.PersistedInstances = m.Instances
			out.LastCompaction = m.CompactedAt
		}
	}
	return out
}

// ---- write endpoints ----

// RawTable is an inline table in an ingest request. LabelCol is optional;
// unset means the pipeline's label-attribute detection decides.
type RawTable struct {
	Caption  string     `json:"caption,omitempty"`
	Headers  []string   `json:"headers"`
	Rows     [][]string `json:"rows"`
	LabelCol *int       `json:"labelCol,omitempty"`
}

// IngestRequest is the POST /v1/ingest body: a class plus any mix of
// corpus table IDs, an "auto" count (the next N not-yet-ingested tables
// the server has classified for the class), and inline raw tables.
type IngestRequest struct {
	Class  string     `json:"class"`
	Tables []int      `json:"tables,omitempty"`
	Auto   int        `json:"auto,omitempty"`
	Raw    []RawTable `json:"raw,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	class, ok := s.resolveClass(req.Class, true)
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("class %q is not served", req.Class))
		return
	}
	s.jobMu.Lock()
	reason, bad := s.poisoned[class]
	s.jobMu.Unlock()
	if bad {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Sprintf("class %s refuses ingests after an engine panic (%s); restart the server", class, reason))
		return
	}
	raw := make([]*webtable.Table, 0, len(req.Raw))
	for i, rt := range req.Raw {
		t := &webtable.Table{
			Caption:  rt.Caption,
			Headers:  append([]string(nil), rt.Headers...),
			Cells:    rt.Rows,
			LabelCol: -1,
		}
		if rt.LabelCol != nil {
			if *rt.LabelCol < 0 || *rt.LabelCol >= len(rt.Headers) {
				writeErr(w, http.StatusBadRequest, fmt.Sprintf("raw table %d: labelCol %d out of range", i, *rt.LabelCol))
				return
			}
			t.LabelCol = *rt.LabelCol
		}
		if err := t.Validate(); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("raw table %d: %v", i, err))
			return
		}
		raw = append(raw, t)
	}
	if req.Auto < 0 {
		writeErr(w, http.StatusBadRequest, "auto must be non-negative")
		return
	}
	// The job's context is independent of the HTTP request's: an async
	// ingest must survive its submitting request. DELETE /v1/jobs/{id}
	// (and a deadline-expired Shutdown) cancel it.
	jctx, cancel := context.WithCancel(context.Background())
	j, err := s.enqueue(&job{
		kind:   jobIngest,
		class:  class,
		tables: append([]int(nil), req.Tables...),
		auto:   req.Auto,
		raw:    raw,
		ctx:    jctx,
		cancel: cancel,
	})
	if err != nil {
		cancel()
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.respondJob(w, r, j, http.StatusAccepted)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapshotDir == "" {
		writeErr(w, http.StatusConflict, "no snapshot directory configured")
		return
	}
	j, err := s.enqueue(&job{kind: jobSnapshot})
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.respondJob(w, r, j, http.StatusAccepted)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "job ID must be an integer")
		return
	}
	s.jobMu.Lock()
	j := s.jobs[id]
	s.jobMu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, s.viewJob(j))
}

// handleJobCancel implements DELETE /v1/jobs/{id}: a queued job is marked
// cancelled and will be skipped by the writer; a running job has its
// context cancelled and unwinds at the engine's next cooperative
// checkpoint (poll GET /v1/jobs/{id}, or pass ?wait=1 to block until it
// has fully stopped). Finished jobs cannot be cancelled (409).
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "job ID must be an integer")
		return
	}
	s.jobMu.Lock()
	j := s.jobs[id]
	var status string
	cancellable := false
	if j != nil {
		status = j.status
		// Only jobs carrying a cancel func are cancellable (ingests);
		// snapshots are not, queued or running.
		cancellable = j.cancel != nil
		if status == statusQueued && cancellable {
			j.status = statusCancelled
			j.errMsg = "cancelled while queued"
		}
		// A running job's status flips to cancelled only once the engine
		// has actually unwound, so a poller never sees "cancelled" while
		// the writer is still inside Ingest.
	}
	s.jobMu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no job %d", id))
		return
	}
	if !cancellable && (status == statusQueued || status == statusRunning) {
		writeErr(w, http.StatusConflict, fmt.Sprintf("job %d (%s) cannot be cancelled", id, j.kind))
		return
	}
	switch status {
	case statusQueued:
		j.cancel()
		writeJSON(w, http.StatusOK, s.viewJob(j))
	case statusRunning:
		j.cancel()
		s.respondJob(w, r, j, http.StatusAccepted)
	default:
		writeErr(w, http.StatusConflict, fmt.Sprintf("job %d already finished (%s)", id, status))
	}
}

// respondJob renders a freshly enqueued job, waiting for completion first
// when the request carries ?wait=1 (capped by the request context).
func (s *Server) respondJob(w http.ResponseWriter, r *http.Request, j *job, code int) {
	if isTrue(r.URL.Query().Get("wait")) {
		select {
		case <-j.done:
			code = http.StatusOK
		case <-r.Context().Done():
			// Fall through and report the job as it currently is.
		}
	}
	writeJSON(w, code, s.viewJob(j))
}

// ---- helpers ----

// resolveClass maps a class ID or paper short name ("Song", "GF-Player")
// to a class; servedOnly restricts resolution to classes with engines.
func (s *Server) resolveClass(name string, servedOnly bool) (kb.ClassID, bool) {
	if id := kb.ClassID(name); s.kb.Class(id) != nil {
		if !servedOnly {
			return id, true
		}
		_, ok := s.engines[id]
		return id, ok
	}
	for _, class := range s.kb.Classes() {
		if !strings.EqualFold(kb.ClassShortName(class), name) {
			continue
		}
		if !servedOnly {
			return class, true
		}
		_, ok := s.engines[class]
		return class, ok
	}
	return "", false
}

// maxRequestBody caps POST bodies (inline raw tables included): a
// long-running server must not be OOM-able by one unbounded upload.
const maxRequestBody = 8 << 20

// decodeBody strictly decodes a JSON request body into dst, bounded by
// maxRequestBody.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	writeCached(w, code, mustMarshal(v))
}

func writeCached(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func mustMarshal(v any) []byte {
	body, err := json.Marshal(v)
	if err != nil {
		// Every view type here marshals by construction; an error is a
		// programming bug worth failing loudly on.
		panic(fmt.Sprintf("serve: marshaling response: %v", err))
	}
	return append(body, '\n')
}

func isTrue(v string) bool {
	return v == "1" || strings.EqualFold(v, "true")
}
