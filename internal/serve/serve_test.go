package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/webtable"
	"repro/internal/world"
)

// fixture generates a private world and corpus plus the table-to-class
// assignment; serve tests grow the KB and corpus and must not share
// fixtures with other tests.
func fixture(t testing.TB) (*world.World, *webtable.Corpus, []int) {
	t.Helper()
	w := world.Generate(world.DefaultConfig(0.2))
	c := webtable.Synthesize(w, webtable.DefaultSynthConfig(0.12))
	byClass, _ := core.ClassifyTables(context.Background(), w.KB, c, 0.3, 0)
	tables := byClass[kb.ClassGFPlayer]
	if len(tables) < 2 {
		t.Fatal("fixture needs at least two GF-Player tables")
	}
	return w, c, tables
}

// newTestServer builds a server over a fresh fixture with one GF-Player
// engine. snapshotDir may be empty.
func newTestServer(t testing.TB, snapshotDir string) (*Server, []int) {
	t.Helper()
	w, c, tables := fixture(t)
	cfg := core.DefaultConfig(w.KB, c, kb.ClassGFPlayer)
	cfg.Iterations = 1
	s, err := New(Config{
		KB:     w.KB,
		Corpus: c,
		Engines: map[kb.ClassID]*core.Engine{
			kb.ClassGFPlayer: core.NewEngine(cfg, core.Models{}),
		},
		SnapshotDir: snapshotDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, tables
}

// do performs one request against the server's handler and decodes the
// JSON response into out (skipped when out is nil).
func do(t testing.TB, s *Server, method, target, body string, out any) int {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, target, rec.Body.String(), err)
		}
	}
	return rec.Code
}

// ingestWait ingests the given corpus tables synchronously and returns the
// finished job view.
func ingestWait(t testing.TB, s *Server, tables []int) JobView {
	t.Helper()
	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables})
	var jv JobView
	code := do(t, s, http.MethodPost, "/v1/ingest?wait=1", string(body), &jv)
	if code != http.StatusOK || jv.Status != statusDone {
		t.Fatalf("ingest = %d %+v", code, jv)
	}
	return jv
}

func TestServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, tables := newTestServer(t, dir)
	lo := len(tables) / 2

	var health map[string]string
	if code := do(t, s, http.MethodGet, "/healthz", "", &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, health)
	}
	var classes []ClassView
	do(t, s, http.MethodGet, "/v1/classes", "", &classes)
	if len(classes) != 1 || classes[0].ShortName != "GF-Player" || classes[0].Epoch != 0 {
		t.Fatalf("classes = %+v", classes)
	}

	// Ingest the first half of the tables and check the epoch's effects.
	jv := ingestWait(t, s, tables[:lo])
	if jv.Stats == nil || jv.Stats.Epoch != 1 || jv.Stats.WrittenBack == 0 {
		t.Fatalf("ingest stats = %+v", jv.Stats)
	}
	written := jv.Stats.KBInstances - jv.Stats.WrittenBack // first written-back ID

	// Lookup: a written-back instance is served with provenance.
	var inst InstanceView
	if code := do(t, s, http.MethodGet, fmt.Sprintf("/v1/instances/%d", written), "", &inst); code != 200 {
		t.Fatalf("instance lookup = %d", code)
	}
	if inst.Provenance != kb.ProvenanceIngest || inst.IngestEpoch != 1 {
		t.Fatalf("instance = %+v", inst)
	}

	// The same lookup again must be served from the response cache.
	var st0, st1 StatsView
	do(t, s, http.MethodGet, "/v1/stats", "", &st0)
	do(t, s, http.MethodGet, fmt.Sprintf("/v1/instances/%d", written), "", nil)
	do(t, s, http.MethodGet, "/v1/stats", "", &st1)
	if st1.Cache.Hits != st0.Cache.Hits+1 {
		t.Errorf("cache hits %d -> %d, want +1", st0.Cache.Hits, st1.Cache.Hits)
	}
	if st1.Classes["dbo:GridironFootballPlayer"].Epoch != 1 {
		t.Errorf("stats classes = %+v", st1.Classes)
	}
	if len(st1.Classes["dbo:GridironFootballPlayer"].History) != 1 {
		t.Errorf("stats history = %+v", st1.Classes)
	}

	// Fuzzy search finds the written-back instance by its own label and by
	// a one-edit misspelling of it (the per-token fallback fix, exercised
	// through the serving stack).
	label := inst.Labels[0]
	var sv SearchView
	do(t, s, http.MethodGet, "/v1/search?q="+queryEscape(label), "", &sv)
	if !hitsContain(sv.Hits, inst.ID) {
		t.Fatalf("exact search for %q missed instance %d: %+v", label, inst.ID, sv.Hits)
	}
	typo := misspell(label)
	do(t, s, http.MethodGet, "/v1/search?q="+queryEscape(typo)+"&class=GF-Player", "", &sv)
	if !hitsContain(sv.Hits, inst.ID) {
		t.Errorf("fuzzy search for %q (from %q) missed instance %d: %+v", typo, label, inst.ID, sv.Hits)
	}

	// The last epoch's new entities are listed.
	var ev EntitiesView
	do(t, s, http.MethodGet, "/v1/classes/GF-Player/entities?new=1", "", &ev)
	if ev.Epoch != 1 || len(ev.Entities) == 0 {
		t.Fatalf("entities = epoch %d, %d entities", ev.Epoch, len(ev.Entities))
	}
	for _, e := range ev.Entities {
		if !e.IsNew {
			t.Fatalf("new=1 returned a non-new entity: %+v", e)
		}
	}

	// Snapshot, then restart into a regenerated world: the discoveries and
	// the epoch counter survive.
	var snap JobView
	if code := do(t, s, http.MethodPost, "/v1/snapshot?wait=1", "", &snap); code != 200 || snap.Status != statusDone {
		t.Fatalf("snapshot = %d %+v", code, snap)
	}
	if snap.Manifest == nil || snap.Manifest.Instances != jv.Stats.WrittenBack {
		t.Fatalf("snapshot manifest = %+v, want %d instances", snap.Manifest, jv.Stats.WrittenBack)
	}
	s.Close()

	s2, tables2 := newTestServer(t, dir)
	if s2.Warm == nil {
		t.Fatal("restart did not warm-start from the snapshot")
	}
	var inst2 InstanceView
	if code := do(t, s2, http.MethodGet, fmt.Sprintf("/v1/instances/%d", written), "", &inst2); code != 200 {
		t.Fatalf("warm lookup = %d", code)
	}
	if inst2.Labels[0] != label {
		t.Errorf("warm instance label %q, want %q", inst2.Labels[0], label)
	}
	do(t, s2, http.MethodGet, "/v1/classes", "", &classes)
	if classes[0].Epoch != 1 {
		t.Errorf("warm epoch = %d, want 1", classes[0].Epoch)
	}
	// A further ingest continues the epoch sequence.
	jv2 := ingestWait(t, s2, tables2[lo:])
	if jv2.Stats.Epoch != 2 {
		t.Errorf("post-restart epoch = %d, want 2", jv2.Stats.Epoch)
	}
}

func TestServeBadInput(t *testing.T) {
	s, _ := newTestServer(t, "")

	cases := []struct {
		method, target, body string
		want                 int
	}{
		{"POST", "/v1/ingest", `{bad json`, 400},
		{"POST", "/v1/ingest", `{"class":"Nope","tables":[0]}`, 400},
		{"POST", "/v1/ingest", `{"class":"Song","tables":[0]}`, 400}, // known class, not served
		{"POST", "/v1/ingest", `{"class":"GF-Player","raw":[{"headers":["only one"],"rows":[["x"]]}]}`, 400},
		{"POST", "/v1/ingest", `{"class":"GF-Player","raw":[{"headers":["a","b"],"rows":[["x"]]}]}`, 400}, // ragged
		{"POST", "/v1/ingest", `{"class":"GF-Player","raw":[{"headers":["a","b"],"rows":[["x","y"]],"labelCol":5}]}`, 400},
		{"GET", "/v1/instances/abc", "", 400},
		{"GET", "/v1/instances/999999999", "", 404},
		{"GET", "/v1/search", "", 400},
		{"GET", "/v1/search?q=x&k=0", "", 400},
		{"GET", "/v1/search?q=x&k=101", "", 400},
		{"GET", "/v1/search?q=x&class=Nope", "", 400},
		{"GET", "/v1/jobs/999", "", 404},
		{"GET", "/v1/jobs/abc", "", 400},
		{"GET", "/v1/classes/Nope/entities", "", 404},
		{"POST", "/v1/snapshot", "", 409}, // no snapshot dir configured
	}
	for _, tc := range cases {
		if code := do(t, s, tc.method, tc.target, tc.body, nil); code != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.target, code, tc.want)
		}
	}

	// Unknown corpus table IDs fail the job, not the process.
	var jv JobView
	do(t, s, http.MethodPost, "/v1/ingest?wait=1", `{"class":"GF-Player","tables":[99999]}`, &jv)
	if jv.Status != statusFailed || jv.Error == "" {
		t.Errorf("unknown-table job = %+v, want failed", jv)
	}

	// A degenerate-but-valid batch — an empty batch, then a garbage raw
	// table — must complete without taking the server down.
	do(t, s, http.MethodPost, "/v1/ingest?wait=1", `{"class":"GF-Player","tables":[]}`, &jv)
	if jv.Status != statusDone {
		t.Errorf("empty batch = %+v, want done", jv)
	}
	garbage := `{"class":"GF-Player","raw":[{"caption":"junk",` +
		`"headers":["?!","??"],"rows":[["~~~","%%%"],["","  "]]}]}`
	do(t, s, http.MethodPost, "/v1/ingest?wait=1", garbage, &jv)
	if jv.Status != statusDone {
		t.Errorf("garbage raw table = %+v, want done", jv)
	}
	if code := do(t, s, http.MethodGet, "/healthz", "", nil); code != 200 {
		t.Fatal("server died after degenerate batches")
	}
}

// TestServeSearchDuringIngest drives concurrent reads through every read
// endpoint while the single-writer loop runs ingest epochs. Run under
// -race (CI does), this is the regression test for the Engine accessor
// aliasing audit: handlers must never observe a later epoch's in-place
// mutation of retained state.
func TestServeSearchDuringIngest(t *testing.T) {
	s, tables := newTestServer(t, "")
	lo := len(tables) / 2

	// Epoch 1 synchronously, so reads have retained state to alias.
	ingestWait(t, s, tables[:lo])

	// Epoch 2 asynchronously while readers hammer the API.
	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[lo:]})
	var jv JobView
	if code := do(t, s, http.MethodPost, "/v1/ingest", string(body), &jv); code != http.StatusAccepted {
		t.Fatalf("async ingest = %d", code)
	}

	targets := []string{
		"/v1/search?q=player&class=GF-Player",
		"/v1/search?q=plaayer", // fuzzy path
		"/v1/instances/0",
		"/v1/classes",
		"/v1/classes/GF-Player/entities",
		"/v1/classes/GF-Player/entities?new=1",
		"/v1/stats",
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, target := range targets {
		wg.Add(1)
		go func(target string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet, target, nil)
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				if rec.Code != 200 {
					t.Errorf("%s = %d during ingest", target, rec.Code)
					return
				}
			}
		}(target)
	}

	// Torn-view invariant: the epoch counter and the per-epoch history are
	// published in one critical section, so a reader must never see a new
	// epoch number paired with the previous epoch's history (or an
	// entities listing labeled with an epoch it doesn't belong to).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var st StatsView
			do(t, s, http.MethodGet, "/v1/stats", "", &st)
			cs := st.Classes["dbo:GridironFootballPlayer"]
			if cs.Epoch != len(cs.History) {
				t.Errorf("torn stats view: epoch %d with %d history entries", cs.Epoch, len(cs.History))
				return
			}
		}
	}()

	// Wait for the async job to finish, then stop the readers.
	for {
		var cur JobView
		do(t, s, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", jv.ID), "", &cur)
		if cur.Status == statusDone || cur.Status == statusFailed {
			if cur.Status != statusDone {
				t.Errorf("async ingest ended %+v", cur)
			}
			break
		}
	}
	close(stop)
	wg.Wait()

	var st StatsView
	do(t, s, http.MethodGet, "/v1/stats", "", &st)
	if got := st.Classes["dbo:GridironFootballPlayer"].Epoch; got != 2 {
		t.Errorf("final epoch = %d, want 2", got)
	}
}

// TestServeNoOpIngestShortCircuit: a batch resolving to zero new tables
// must not reach the engine — no epoch bump, no retained-state re-fusion —
// so repeated empty requests cannot burn writer CPU for free.
func TestServeNoOpIngestShortCircuit(t *testing.T) {
	s, tables := newTestServer(t, "")

	var jv JobView
	do(t, s, http.MethodPost, "/v1/ingest?wait=1", `{"class":"GF-Player","tables":[]}`, &jv)
	if jv.Status != statusDone || jv.Stats == nil || jv.Stats.Epoch != 0 || jv.Stats.BatchTables != 0 {
		t.Fatalf("empty batch = %+v", jv)
	}

	ingestWait(t, s, tables[:len(tables)/2])
	// Re-submitting already-ingested tables is a no-op: the epoch stays 1
	// and no history entry is appended.
	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[:len(tables)/2]})
	do(t, s, http.MethodPost, "/v1/ingest?wait=1", string(body), &jv)
	if jv.Status != statusDone || jv.Stats.Epoch != 1 || jv.Stats.BatchTables != 0 {
		t.Fatalf("re-ingest = %+v", jv)
	}
	var st StatsView
	do(t, s, http.MethodGet, "/v1/stats", "", &st)
	cs := st.Classes["dbo:GridironFootballPlayer"]
	if cs.Epoch != 1 || len(cs.History) != 1 {
		t.Errorf("after no-op re-ingest: epoch %d, %d history entries", cs.Epoch, len(cs.History))
	}
}

// TestServeJobRetention: finished jobs stay queryable until the job TTL
// expires and are evicted afterwards instead of accumulating forever.
// The clock is injected so the test drives time, not the wall.
func TestServeJobRetention(t *testing.T) {
	s, _ := newTestServer(t, "")
	clock := time.Now()
	s.jobMu.Lock()
	s.now = func() time.Time { return clock }
	s.jobMu.Unlock()

	var first, last JobView
	do(t, s, http.MethodPost, "/v1/ingest?wait=1", `{"class":"GF-Player","tables":[]}`, &first)
	// Age the first job past the TTL; the second finishes "later" and
	// must survive the sweep the listing below triggers.
	clock = clock.Add(s.jobTTL + time.Minute)
	do(t, s, http.MethodPost, "/v1/ingest?wait=1", `{"class":"GF-Player","tables":[]}`, &last)

	var jl JobsView
	do(t, s, http.MethodGet, "/v1/jobs", "", &jl)
	if code := do(t, s, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", first.ID), "", nil); code != 404 {
		t.Errorf("expired job still retained: %d", code)
	}
	if code := do(t, s, http.MethodGet, fmt.Sprintf("/v1/jobs/%d", last.ID), "", nil); code != 200 {
		t.Errorf("fresh job evicted: %d", code)
	}
}

// TestServeWorldKeyMismatchRefused: discoveries snapshotted against one
// deterministic world must not load onto a server built over another —
// seed counts alone cannot tell two same-sized worlds apart.
func TestServeWorldKeyMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	w, c, _ := fixture(t)
	cfg := core.DefaultConfig(w.KB, c, kb.ClassGFPlayer)
	cfg.Iterations = 1
	mk := func(worldKey string) (*Server, error) {
		return New(Config{
			KB:     w.KB,
			Corpus: c,
			Engines: map[kb.ClassID]*core.Engine{
				kb.ClassGFPlayer: core.NewEngine(cfg, core.Models{}),
			},
			SnapshotDir: dir,
			WorldKey:    worldKey,
		})
	}
	s1, err := mk("seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if _, err := mk("seed=2"); err == nil {
		t.Fatal("world-key mismatch should refuse the warm start")
	}
	s2, err := mk("seed=1")
	if err != nil {
		t.Fatalf("matching world key refused: %v", err)
	}
	if s2.Warm == nil {
		t.Error("matching world key should warm-start")
	}
	s2.Close()
}

// TestServeStorageStatsAndAutoCompaction: /v1/stats reports the columnar
// storage footprint and the snapshot segment chain, and the snapshot job
// folds the chain back into one segment once it reaches CompactAfter.
func TestServeStorageStatsAndAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	w, c, tables := fixture(t)
	cfg := core.DefaultConfig(w.KB, c, kb.ClassGFPlayer)
	cfg.Iterations = 1
	s, err := New(Config{
		KB:     w.KB,
		Corpus: c,
		Engines: map[kb.ClassID]*core.Engine{
			kb.ClassGFPlayer: core.NewEngine(cfg, core.Models{}),
		},
		SnapshotDir:  dir,
		CompactAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	var st StatsView
	do(t, s, http.MethodGet, "/v1/stats", "", &st)
	if st.Storage.Instances != w.KB.NumInstances() || st.Storage.Ingested != 0 {
		t.Fatalf("cold storage stats = %+v", st.Storage)
	}
	if st.Storage.ApproxBytes <= 0 || len(st.Storage.Classes) == 0 {
		t.Fatalf("storage footprint missing: %+v", st.Storage)
	}
	if st.Storage.Segments != 0 {
		t.Fatalf("segments before any save = %d", st.Storage.Segments)
	}

	// First epoch + save: a one-segment chain, not yet compacted.
	lo := len(tables) / 2
	ingestWait(t, s, tables[:lo])
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	do(t, s, http.MethodGet, "/v1/stats", "", &st)
	if st.Storage.Segments != 1 || st.Storage.LastCompaction != 0 {
		t.Fatalf("after first save: %+v", st.Storage)
	}
	if st.Storage.Ingested == 0 || st.Storage.PersistedInstances != st.Storage.Ingested {
		t.Fatalf("persisted/ingested mismatch: %+v", st.Storage)
	}

	// Second epoch + save: the delta segment pushes the chain to
	// CompactAfter, so the job compacts it back to one segment.
	ingestWait(t, s, tables[lo:])
	m, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 1 || m.CompactedAt == 0 {
		t.Fatalf("auto-compaction did not run: %+v", m)
	}
	do(t, s, http.MethodGet, "/v1/stats", "", &st)
	if st.Storage.Segments != 1 || st.Storage.LastCompaction != m.CompactedAt {
		t.Fatalf("after compaction: %+v", st.Storage)
	}
}

func TestServeQueueClosedAfterShutdown(t *testing.T) {
	s, tables := newTestServer(t, "")
	s.Close()
	body, _ := json.Marshal(IngestRequest{Class: "GF-Player", Tables: tables[:1]})
	var jv map[string]string
	if code := do(t, s, http.MethodPost, "/v1/ingest", string(body), &jv); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown ingest = %d, want 503", code)
	}
	// Reads still work after shutdown (the KB is intact).
	if code := do(t, s, http.MethodGet, "/healthz", "", nil); code != 200 {
		t.Error("post-shutdown health check failed")
	}
	s.Close() // idempotent
}

// ---- helpers ----

func hitsContain(hits []SearchHitView, id int) bool {
	for _, h := range hits {
		if h.ID == id {
			return true
		}
	}
	return false
}

// misspell applies one edit (drop the second letter) to the first token of
// the label that is at least four letters long, yielding a query within
// Levenshtein distance 1 of the original token.
func misspell(label string) string {
	words := strings.Fields(label)
	for i, w := range words {
		if len(w) >= 4 {
			words[i] = w[:1] + w[2:]
			break
		}
	}
	return strings.Join(words, " ")
}

func queryEscape(s string) string {
	return strings.ReplaceAll(s, " ", "+")
}
