package strsim

import (
	"sync"
	"unicode"
	"unicode/utf8"
)

// The token interner gives every distinct normalized token a small integer
// ID and caches its decoded form, so the Monge-Elkan inner loop compares
// integers instead of hashing strings and never re-decodes a token it has
// seen before. On top of the IDs sits a sharded memo of token-pair
// LevenshteinSim values: labels across a corpus share a heavy-tailed
// vocabulary, so the same token pairs recur millions of times per pipeline
// run. Memoized values are the exact floats the kernel computes, so
// memoization can never change a result, only skip recomputing it.
//
// Memory: every cache here is capped, because the serving layer feeds
// this package user-supplied strings (inline raw-table ingests), not just
// the generated corpus. The interner stops assigning IDs at internCap
// distinct tokens — internBytes then returns noTokenID and the Monge-Elkan
// entry points fall back to the string kernels, which compute exactly the
// same floats. The pair memo likewise stops inserting at memoShardCap per
// shard and recomputes through the pooled kernel.

// internedToken is one interned token: its string form plus the decoded
// runes when not pure ASCII (nil means "all ASCII, use the bytes").
type internedToken struct {
	s     string
	runes []rune
}

var interner = struct {
	mu   sync.RWMutex
	ids  map[string]int32
	toks []internedToken
}{ids: make(map[string]int32, 1024)}

// noTokenID marks a token the interner declined to intern (cap reached).
// Callers seeing it must fall back to the string kernels.
const noTokenID = int32(-1)

// internCap bounds the distinct tokens the interner will hold (a var so
// tests can exercise the overflow fallback without a million inserts).
var internCap = int32(1 << 20)

// internBytes returns the ID of the token spelled by b, interning it on
// first sight, or noTokenID once the interner is full. The read path does
// a no-allocation map lookup.
func internBytes(b []byte) int32 {
	interner.mu.RLock()
	id, ok := interner.ids[string(b)]
	interner.mu.RUnlock()
	if ok {
		return id
	}
	interner.mu.Lock()
	defer interner.mu.Unlock()
	if id, ok := interner.ids[string(b)]; ok {
		return id
	}
	if int32(len(interner.toks)) >= internCap {
		return noTokenID
	}
	s := string(b)
	id = int32(len(interner.toks))
	t := internedToken{s: s}
	if !isASCII(s) {
		t.runes = []rune(s)
	}
	interner.toks = append(interner.toks, t)
	interner.ids[s] = id
	return id
}

// Intern returns the process-wide intern ID of an (already normalized)
// token, interning it on first sight; ok is false once the interner is
// full. IDs are stable for the process lifetime but depend on call
// history, so they may only key caches — never persisted state or values
// that must agree across processes.
func Intern(tok string) (id int32, ok bool) {
	id = internString(tok)
	return id, id != noTokenID
}

// internString is internBytes for an already-materialized string.
func internString(s string) int32 {
	interner.mu.RLock()
	id, ok := interner.ids[s]
	interner.mu.RUnlock()
	if ok {
		return id
	}
	interner.mu.Lock()
	defer interner.mu.Unlock()
	if id, ok := interner.ids[s]; ok {
		return id
	}
	if int32(len(interner.toks)) >= internCap {
		return noTokenID
	}
	id = int32(len(interner.toks))
	t := internedToken{s: s}
	if !isASCII(s) {
		t.runes = []rune(s)
	}
	interner.toks = append(interner.toks, t)
	interner.ids[s] = id
	return id
}

// hasNoID reports whether any token in ids overflowed the interner.
func hasNoID(ids []int32) bool {
	for _, id := range ids {
		if id == noTokenID {
			return true
		}
	}
	return false
}

// tokenOf returns the interned token for an ID.
func tokenOf(id int32) internedToken {
	interner.mu.RLock()
	t := interner.toks[id]
	interner.mu.RUnlock()
	return t
}

// appendTokenIDs tokenizes s exactly as Tokens does (maximal runs of
// letters/digits, lowercased) and appends the interned ID of each token to
// dst, without materializing intermediate strings.
func appendTokenIDs(dst []int32, s string) []int32 {
	sc := tokBufPool.Get().(*[]byte)
	buf := (*sc)[:0]
	flush := func() {
		if len(buf) > 0 {
			dst = append(dst, internBytes(buf))
			buf = buf[:0]
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			buf = utf8.AppendRune(buf, unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	*sc = buf[:0]
	tokBufPool.Put(sc)
	return dst
}

var tokBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64)
	return &b
}}

// idSlicePool recycles the token-ID scratch slices of the string-typed
// Monge-Elkan entry points.
var idSlicePool = sync.Pool{New: func() any {
	s := make([]int32, 0, 16)
	return &s
}}

// ---------------------------------------------------------------------------
// Token-pair similarity memo.

const (
	memoShardCount = 64
	// memoShardCap bounds each shard (~1M pairs total); beyond it the
	// memo stops inserting and pairs are recomputed by the pooled kernel.
	memoShardCap = 1 << 14
)

type memoShard struct {
	mu sync.RWMutex
	m  map[uint64]float64
}

var memoShards [memoShardCount]memoShard

// levSimTok returns LevenshteinSim of two interned tokens, memoized.
func levSimTok(x, y int32) float64 {
	if x == y {
		return 1
	}
	lo, hi := x, y
	if lo > hi {
		lo, hi = hi, lo
	}
	key := uint64(uint32(lo))<<32 | uint64(uint32(hi))
	sh := &memoShards[key%memoShardCount]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	v = levSimInterned(tokenOf(x), tokenOf(y))
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]float64, 256)
	}
	if len(sh.m) < memoShardCap {
		sh.m[key] = v
	}
	sh.mu.Unlock()
	return v
}

// levSimInterned computes LevenshteinSim using the interned tokens' cached
// decoded forms (no per-call decoding for non-ASCII tokens).
func levSimInterned(tx, ty internedToken) float64 {
	if tx.s == ty.s {
		return 1
	}
	sc := levPool.Get().(*levScratch)
	defer levPool.Put(sc)
	if tx.runes == nil && ty.runes == nil {
		return simOf(sc.distASCII(tx.s, ty.s), len(tx.s), len(ty.s))
	}
	ra := tx.runes
	if ra == nil {
		ra = appendRunes(sc.ra[:0], tx.s)
		sc.ra = ra
	}
	rb := ty.runes
	if rb == nil {
		rb = appendRunes(sc.rb[:0], ty.s)
		sc.rb = rb
	}
	return simOf(sc.distRunes(ra, rb), len(ra), len(rb))
}
