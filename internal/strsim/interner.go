package strsim

// Interner is an instantiable raw-string intern pool: every distinct
// string gets a dense int32 ID that round-trips byte-exactly through
// Lookup. It complements the process-wide token interner of intern.go,
// which holds normalized tokens for the similarity kernels and may refuse
// entries once full — an Interner is owned by one data structure (the
// columnar KB store interns instance labels and fact strings through
// one), is uncapped because the owner controls what enters it, and keeps
// exact spellings rather than normalized forms.
//
// An Interner does no locking of its own: the owner synchronizes access,
// calling Intern only under its write lock and Lookup/Len/Bytes under at
// least its read lock. This keeps the per-access cost of the owner's hot
// read paths to a slice index.
type Interner struct {
	ids  map[string]int32
	strs []string
	// payload accumulates the byte length of the interned strings for
	// Bytes, so memory accounting never re-walks the pool.
	payload int64
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32, 256)}
}

// Intern returns the ID of s, assigning the next dense ID on first
// sight. IDs start at 0 and are stable for the interner's lifetime, but
// depend on insertion history — they may only key in-memory state owned
// by the same holder, never persisted or cross-process values.
func (it *Interner) Intern(s string) int32 {
	if id, ok := it.ids[s]; ok {
		return id
	}
	id := int32(len(it.strs))
	it.strs = append(it.strs, s)
	it.ids[s] = id
	it.payload += int64(len(s))
	return id
}

// Lookup returns the string with the given ID. IDs come only from
// Intern, so an out-of-range ID is a caller bug and panics like any
// slice index.
func (it *Interner) Lookup(id int32) string { return it.strs[id] }

// Len returns the number of distinct interned strings.
func (it *Interner) Len() int { return len(it.strs) }

// Bytes returns the approximate resident size of the interner: string
// payloads plus per-entry slice and map bookkeeping (string headers and
// map cells, estimated at 48 bytes per entry).
func (it *Interner) Bytes() int64 {
	return it.payload + int64(len(it.strs))*48
}
