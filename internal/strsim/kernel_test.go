package strsim

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// The optimized kernels must be provably equivalent to the unexported
// reference implementations: same integers, bit-identical floats. The
// generators below mix ASCII, multi-byte unicode, empty strings,
// near-duplicates, and repeated tokens — every shape the pipeline feeds
// the kernels.

var genRunes = []rune("abcdefgh züñ東 123ABZ -_.,√")

func randString(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(genRunes[rng.Intn(len(genRunes))])
	}
	return b.String()
}

// mutate returns s with a small random edit, so near-duplicate pairs (the
// interesting region for bounded kernels) are well covered.
func mutate(rng *rand.Rand, s string) string {
	rs := []rune(s)
	if len(rs) == 0 {
		return string(genRunes[rng.Intn(len(genRunes))])
	}
	i := rng.Intn(len(rs))
	switch rng.Intn(3) {
	case 0: // substitute
		rs[i] = genRunes[rng.Intn(len(genRunes))]
	case 1: // delete
		rs = append(rs[:i], rs[i+1:]...)
	default: // insert
		rs = append(rs[:i], append([]rune{genRunes[rng.Intn(len(genRunes))]}, rs[i:]...)...)
	}
	return string(rs)
}

func randPair(rng *rand.Rand) (string, string) {
	a := randString(rng, 24)
	switch rng.Intn(3) {
	case 0:
		return a, randString(rng, 24)
	case 1:
		return a, mutate(rng, a)
	default:
		return a, a
	}
}

func TestLevenshteinMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b := randPair(rng)
		if got, want := Levenshtein(a, b), levenshteinRef(a, b); got != want {
			t.Fatalf("Levenshtein(%q, %q) = %d, ref %d", a, b, got, want)
		}
	}
}

func TestLevenshteinSimMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a, b := randPair(rng)
		if got, want := LevenshteinSim(a, b), levenshteinSimRef(a, b); got != want {
			t.Fatalf("LevenshteinSim(%q, %q) = %v, ref %v", a, b, got, want)
		}
	}
}

// TestLevenshteinSimBounded proves the bounded kernel's contract: above
// the floor it returns exactly the reference similarity; at or below the
// floor it returns some value ≤ floor (so a best-candidate search keeps
// exactly the winners the unbounded kernel would).
func TestLevenshteinSimBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	floors := []float64{-0.5, 0, 0.25, 0.5, 0.8, 0.95, 1}
	for i := 0; i < 5000; i++ {
		a, b := randPair(rng)
		ref := levenshteinSimRef(a, b)
		for _, floor := range floors {
			got := LevenshteinSimBounded(a, b, floor)
			if ref > floor {
				if got != ref {
					t.Fatalf("LevenshteinSimBounded(%q, %q, %v) = %v, want exact ref %v", a, b, floor, got, ref)
				}
			} else if got > floor {
				t.Fatalf("LevenshteinSimBounded(%q, %q, %v) = %v > floor but ref %v <= floor", a, b, floor, got, ref)
			}
		}
	}
}

// TestLevenshteinBounded proves the distance form of the bounded kernel:
// exact when within max, max+1-capped otherwise.
func TestLevenshteinBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		a, b := randPair(rng)
		ref := levenshteinRef(a, b)
		for _, max := range []int{0, 1, 2, 5, 30} {
			got := LevenshteinBounded(a, b, max)
			if ref <= max {
				if got != ref {
					t.Fatalf("LevenshteinBounded(%q, %q, %d) = %d, want exact %d", a, b, max, got, ref)
				}
			} else if got != max+1 {
				t.Fatalf("LevenshteinBounded(%q, %q, %d) = %d, want %d (ref %d)", a, b, max, got, max+1, ref)
			}
		}
	}
}

func TestMongeElkanMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		a, b := randPair(rng)
		if got, want := MongeElkan(a, b), mongeElkanRef(a, b); got != want {
			t.Fatalf("MongeElkan(%q, %q) = %v, ref %v", a, b, got, want)
		}
		if got, want := MongeElkanSym(a, b), mongeElkanSymRef(a, b); got != want {
			t.Fatalf("MongeElkanSym(%q, %q) = %v, ref %v", a, b, got, want)
		}
	}
}

// TestPreparedMatchesRef proves the prepared fast path (interned IDs, the
// token-pair memo warm and cold) returns bit-identical Monge-Elkan values
// and exactly the reference tokens and term vector.
func TestPreparedMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a, b := randPair(rng)
		pa, pb := PrepareCached(a), PrepareCached(b)
		if got, want := pa.MongeElkanSym(pb), mongeElkanSymRef(a, b); got != want {
			t.Fatalf("Prepared MongeElkanSym(%q, %q) = %v, ref %v", a, b, got, want)
		}
		if got, want := pa.MongeElkan(pb), mongeElkanRef(a, b); got != want {
			t.Fatalf("Prepared MongeElkan(%q, %q) = %v, ref %v", a, b, got, want)
		}
		if want := Tokens(a); !reflect.DeepEqual(pa.Tokens, want) && !(len(pa.Tokens) == 0 && len(want) == 0) {
			t.Fatalf("Prepare(%q).Tokens = %q, want %q", a, pa.Tokens, want)
		}
		if got, want := pa.Norm, Normalize(a); got != want {
			t.Fatalf("Prepare(%q).Norm = %q, want %q", a, got, want)
		}
		ref := ToSparse(BinaryTermVector(a))
		got := pa.TermVec()
		if !reflect.DeepEqual(got.Elems, ref.Elems) && !(got.Len() == 0 && ref.Len() == 0) {
			t.Fatalf("Prepare(%q).TermVec = %v, want %v", a, got.Elems, ref.Elems)
		}
		if got.norm != ref.norm {
			t.Fatalf("Prepare(%q).TermVec norm = %v, want %v", a, got.norm, ref.norm)
		}
	}
}

// TestTermCosineMatchesRef proves the cached-vector cosine is bit-identical
// to the map-building reference for arbitrary label pairs.
func TestTermCosineMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		a, b := randPair(rng)
		got := TermCosine(a, b)
		want := Cosine(BinaryTermVector(a), BinaryTermVector(b))
		if got != want {
			t.Fatalf("TermCosine(%q, %q) = %v, ref %v", a, b, got, want)
		}
	}
}

// TestInternTokenization proves the no-intermediate-string tokenizer
// matches Tokens exactly.
func TestInternTokenization(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		s := randString(rng, 40)
		ids := appendTokenIDs(nil, s)
		got := make([]string, len(ids))
		for j, id := range ids {
			got[j] = tokenOf(id).s
		}
		want := Tokens(s)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("appendTokenIDs(%q) = %q, Tokens = %q", s, got, want)
		}
	}
}

// TestMemoIsExact runs the same pair twice (cold, then memo-warm) and a
// concurrent burst, verifying the memo never changes a value.
func TestMemoIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b := randPair(rng)
		cold := MongeElkanSym(a, b)
		warm := MongeElkanSym(a, b)
		if cold != warm {
			t.Fatalf("memo changed MongeElkanSym(%q, %q): %v then %v", a, b, cold, warm)
		}
	}
}

// TestInternerCapFallback fills the interner to its cap and proves the
// string-kernel fallback (taken for tokens the interner declines) still
// returns bit-exact reference values, that the interner stops growing,
// and that bounded-kernel pruning inside the fallback does not change
// maxima.
func TestInternerCapFallback(t *testing.T) {
	interner.mu.RLock()
	used := int32(len(interner.toks))
	interner.mu.RUnlock()
	old := internCap
	internCap = used // every new token overflows from here on
	defer func() { internCap = old }()

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		// Fresh random strings: most tokens will be new, hence refused.
		a, b := randPair(rng)
		if got, want := MongeElkanSym(a, b), mongeElkanSymRef(a, b); got != want {
			t.Fatalf("capped MongeElkanSym(%q, %q) = %v, ref %v", a, b, got, want)
		}
		pa, pb := Prepare(a), Prepare(b)
		if got, want := pa.MongeElkanSym(pb), mongeElkanSymRef(a, b); got != want {
			t.Fatalf("capped prepared MongeElkanSym(%q, %q) = %v, ref %v", a, b, got, want)
		}
		if got, want := pa.MongeElkan(pb), mongeElkanRef(a, b); got != want {
			t.Fatalf("capped prepared MongeElkan(%q, %q) = %v, ref %v", a, b, got, want)
		}
	}
	interner.mu.RLock()
	grown := int32(len(interner.toks))
	interner.mu.RUnlock()
	if grown > used {
		t.Fatalf("interner grew past its cap: %d -> %d", used, grown)
	}
}

func TestPrepareCachedReturnsSamePointer(t *testing.T) {
	p1 := PrepareCached("Some Label 42")
	p2 := PrepareCached("Some Label 42")
	if p1 != p2 {
		t.Fatal("PrepareCached did not cache")
	}
}
