package strsim

import (
	"sync"
	"unicode/utf8"
)

// The edit-distance kernels below are the innermost loops of the whole
// pipeline: every LABEL metric, every blocking lookup, and the fuzzy index
// fallback bottom out here. The exported functions are allocation-free on
// the hot path — scratch DP rows and rune buffers come from a sync.Pool,
// all-ASCII inputs (the common case after normalization) skip rune
// decoding entirely, and common prefixes/suffixes are trimmed before the
// DP. The pre-optimization implementations are kept as unexported *Ref
// functions; randomized tests in kernel_test.go prove the optimized
// kernels return exactly the reference values.

// Levenshtein returns the edit distance between a and b over runes.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	sc := levPool.Get().(*levScratch)
	d, _, _ := sc.dist(a, b)
	levPool.Put(sc)
	return d
}

// LevenshteinSim normalizes the edit distance into a similarity in [0, 1].
// Both strings are decoded exactly once: the rune lengths the
// normalization needs are shared with the distance computation.
func LevenshteinSim(a, b string) float64 {
	if a == b {
		return 1
	}
	sc := levPool.Get().(*levScratch)
	d, la, lb := sc.dist(a, b)
	levPool.Put(sc)
	return simOf(d, la, lb)
}

// LevenshteinBounded returns the edit distance between a and b when it is
// at most max, and max+1 otherwise. The banded dynamic program touches
// only a 2·max+1 wide diagonal strip and abandons early, so "is the
// distance ≤ 1?" checks (the fuzzy index verification) cost O(n) instead
// of O(n²). max must be ≥ 0.
func LevenshteinBounded(a, b string, max int) int {
	if a == b {
		return 0
	}
	sc := levPool.Get().(*levScratch)
	defer levPool.Put(sc)
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	if max >= la && max >= lb {
		d, _, _ := sc.dist(a, b)
		return d
	}
	return sc.distBounded(a, b, la, lb, max)
}

// LevenshteinSimBounded is LevenshteinSim for best-candidate searches: it
// abandons pairs that cannot beat floor. When the true similarity exceeds
// floor the exact LevenshteinSim value is returned; otherwise the result
// is some value ≤ floor (not necessarily the true similarity). Callers
// keeping a running best use it as
//
//	if s := LevenshteinSimBounded(a, b, best); s > best { best = s }
//
// The bound turns into a banded dynamic program (band width shrinks as
// floor rises) with an early exit once every path through the band is too
// expensive, so high floors cost O(k·n) instead of O(n²).
func LevenshteinSimBounded(a, b string, floor float64) float64 {
	if a == b {
		return 1
	}
	if floor >= 1 {
		return floor
	}
	sc := levPool.Get().(*levScratch)
	defer levPool.Put(sc)
	if floor < 0 {
		d, la, lb := sc.dist(a, b)
		return simOf(d, la, lb)
	}
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	// Any distance d with 1 − d/m > floor satisfies d ≤ k for this k
	// (one more than the exact cutoff, absorbing float rounding), so a
	// banded result of "> k" proves the similarity is strictly below
	// floor.
	k := int((1-floor)*float64(m)) + 1
	if k >= m {
		d, _, _ := sc.dist(a, b)
		return simOf(d, la, lb)
	}
	d := sc.distBounded(a, b, la, lb, k)
	if d > k {
		return floor
	}
	return simOf(d, la, lb)
}

func simOf(d, la, lb int) float64 {
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(d)/float64(m)
}

// ---------------------------------------------------------------------------
// Pooled scratch state.

// levScratch holds the reusable DP rows and rune buffers of one
// Levenshtein computation. Instances cycle through levPool, so
// steady-state kernel calls allocate nothing.
type levScratch struct {
	prev, cur []int
	ra, rb    []rune
}

var levPool = sync.Pool{New: func() any { return new(levScratch) }}

func (sc *levScratch) rows(n int) (prev, cur []int) {
	if cap(sc.prev) < n {
		sc.prev = make([]int, n)
		sc.cur = make([]int, n)
	}
	return sc.prev[:n], sc.cur[:n]
}

func (sc *levScratch) decode(a, b string) ([]rune, []rune) {
	sc.ra = appendRunes(sc.ra[:0], a)
	sc.rb = appendRunes(sc.rb[:0], b)
	return sc.ra, sc.rb
}

func appendRunes(dst []rune, s string) []rune {
	for _, r := range s {
		dst = append(dst, r)
	}
	return dst
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// dist computes the exact edit distance plus both rune lengths, decoding
// each string at most once (ASCII inputs are never decoded at all).
func (sc *levScratch) dist(a, b string) (d, la, lb int) {
	if isASCII(a) && isASCII(b) {
		return sc.distASCII(a, b), len(a), len(b)
	}
	ra, rb := sc.decode(a, b)
	return sc.distRunes(ra, rb), len(ra), len(rb)
}

// distASCII is the two-row DP over bytes with common prefix/suffix
// trimming (trimming never changes the distance).
func (sc *levScratch) distASCII(a, b string) int {
	for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
		a, b = a[1:], b[1:]
	}
	for len(a) > 0 && len(b) > 0 && a[len(a)-1] == b[len(b)-1] {
		a, b = a[:len(a)-1], b[:len(b)-1]
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev, cur := sc.rows(len(b) + 1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// distRunes is the two-row DP over decoded runes with prefix/suffix
// trimming.
func (sc *levScratch) distRunes(ra, rb []rune) int {
	for len(ra) > 0 && len(rb) > 0 && ra[0] == rb[0] {
		ra, rb = ra[1:], rb[1:]
	}
	for len(ra) > 0 && len(rb) > 0 && ra[len(ra)-1] == rb[len(rb)-1] {
		ra, rb = ra[:len(ra)-1], rb[:len(rb)-1]
	}
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev, cur := sc.rows(len(rb) + 1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		ca := ra[i-1]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ca == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// distBounded returns the exact distance when it is ≤ k, and some value
// > k otherwise (the banded DP abandons the computation as soon as every
// path through the band exceeds k). la and lb are the rune lengths,
// already known to the caller.
func (sc *levScratch) distBounded(a, b string, la, lb, k int) int {
	if la-lb > k || lb-la > k {
		return k + 1
	}
	if isASCII(a) && isASCII(b) {
		return sc.bandedASCII(a, b, k)
	}
	ra, rb := sc.decode(a, b)
	return sc.bandedRunes(ra, rb, k)
}

// levInf is the band sentinel: larger than any real distance, small
// enough that +1 arithmetic cannot overflow.
const levInf = 1 << 29

func (sc *levScratch) bandedASCII(a, b string, k int) int {
	la, lb := len(a), len(b)
	prev, cur := sc.rows(lb + 1)
	// Row 0 inside the band, sentinel just past it.
	hi0 := k
	if hi0 > lb {
		hi0 = lb
	}
	for j := 0; j <= hi0; j++ {
		prev[j] = j
	}
	if hi0 < lb {
		prev[hi0+1] = levInf
	}
	for i := 1; i <= la; i++ {
		lo, hi := i-k, i+k
		if lo < 1 {
			lo = 1
		}
		if hi > lb {
			hi = lb
		}
		if lo == 1 {
			cur[0] = i
		} else {
			cur[lo-1] = levInf
		}
		rowMin := levInf
		ca := a[i-1]
		for j := lo; j <= hi; j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			v := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin > k {
			return k + 1
		}
		if hi < lb {
			cur[hi+1] = levInf
		}
		prev, cur = cur, prev
	}
	if prev[lb] > k {
		return k + 1
	}
	return prev[lb]
}

func (sc *levScratch) bandedRunes(ra, rb []rune, k int) int {
	la, lb := len(ra), len(rb)
	prev, cur := sc.rows(lb + 1)
	hi0 := k
	if hi0 > lb {
		hi0 = lb
	}
	for j := 0; j <= hi0; j++ {
		prev[j] = j
	}
	if hi0 < lb {
		prev[hi0+1] = levInf
	}
	for i := 1; i <= la; i++ {
		lo, hi := i-k, i+k
		if lo < 1 {
			lo = 1
		}
		if hi > lb {
			hi = lb
		}
		if lo == 1 {
			cur[0] = i
		} else {
			cur[lo-1] = levInf
		}
		rowMin := levInf
		ca := ra[i-1]
		for j := lo; j <= hi; j++ {
			cost := 1
			if ca == rb[j-1] {
				cost = 0
			}
			v := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin > k {
			return k + 1
		}
		if hi < lb {
			cur[hi+1] = levInf
		}
		prev, cur = cur, prev
	}
	if prev[lb] > k {
		return k + 1
	}
	return prev[lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// ---------------------------------------------------------------------------
// Reference implementations (pre-optimization), kept unexported so the
// randomized equivalence tests can prove the optimized kernels compute
// exactly the same values.

// levenshteinRef is the naive two-row DP over freshly decoded runes.
func levenshteinRef(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// levenshteinSimRef is the naive normalized similarity (re-decodes both
// strings for their lengths, as the pre-optimization code did).
func levenshteinSimRef(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(levenshteinRef(a, b))/float64(m)
}
