package strsim

// Levenshtein returns the edit distance between a and b using two-row
// dynamic programming over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim normalizes the edit distance into a similarity in [0, 1].
func LevenshteinSim(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
