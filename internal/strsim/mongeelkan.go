package strsim

// MongeElkan computes the Monge-Elkan similarity between two strings using
// LevenshteinSim as the inner (token-level) similarity, exactly as the
// paper's LABEL metrics do. The strings are tokenized with the shared
// normalizer; for each token of a the best-matching token of b is found
// and the scores are averaged.
//
// Monge-Elkan is asymmetric; Sym averages both directions and is what
// callers should normally use. Both entry points run on interned token IDs
// with the shared token-pair memo; callers comparing the same labels
// repeatedly should Prepare (or PrepareCached) them once and use
// PreparedLabel.MongeElkanSym, which also skips re-tokenization.
func MongeElkan(a, b string) float64 {
	pa := idSlicePool.Get().(*[]int32)
	pb := idSlicePool.Get().(*[]int32)
	ia := appendTokenIDs((*pa)[:0], a)
	ib := appendTokenIDs((*pb)[:0], b)
	var s float64
	if hasNoID(ia) || hasNoID(ib) {
		s = mongeElkanStrs(Tokens(a), Tokens(b))
	} else {
		s = mongeElkanIDs(ia, ib)
	}
	*pa, *pb = ia[:0], ib[:0]
	idSlicePool.Put(pa)
	idSlicePool.Put(pb)
	return s
}

// MongeElkanSym returns the symmetrized Monge-Elkan similarity,
// (ME(a,b) + ME(b,a)) / 2.
func MongeElkanSym(a, b string) float64 {
	pa := idSlicePool.Get().(*[]int32)
	pb := idSlicePool.Get().(*[]int32)
	ia := appendTokenIDs((*pa)[:0], a)
	ib := appendTokenIDs((*pb)[:0], b)
	var s float64
	if hasNoID(ia) || hasNoID(ib) {
		ta, tb := Tokens(a), Tokens(b)
		s = (mongeElkanStrs(ta, tb) + mongeElkanStrs(tb, ta)) / 2
	} else {
		s = (mongeElkanIDs(ia, ib) + mongeElkanIDs(ib, ia)) / 2
	}
	*pa, *pb = ia[:0], ib[:0]
	idSlicePool.Put(pa)
	idSlicePool.Put(pb)
	return s
}

// MongeElkanSymCached is MongeElkanSym through the prepared-label cache:
// both strings are normalized and tokenized at most once per process
// lifetime. Use it for comparisons over recurring strings (labels, cell
// values); one-off strings should use MongeElkanSym to avoid growing the
// cache.
func MongeElkanSymCached(a, b string) float64 {
	return PrepareCached(a).MongeElkanSym(PrepareCached(b))
}

// mongeElkanIDs is the directed Monge-Elkan average over interned token
// IDs. Identical to the reference token implementation: same iteration
// order, same floats.
func mongeElkanIDs(ta, tb []int32) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	var sum float64
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := levSimTok(x, y); s > best {
				best = s
				if best == 1 {
					break
				}
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// mongeElkanStrs is the directed Monge-Elkan average over token strings —
// the path taken when tokens are not interned (interner at cap). The
// inner best-token search runs the bounded kernel: a token pair that
// cannot beat the running best is abandoned mid-DP, and the bounded
// result is exact whenever it exceeds the floor, so the maxima — and
// therefore the averages — are bit-identical to the unbounded path.
func mongeElkanStrs(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	var sum float64
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if x == y {
				best = 1
				break
			}
			if s := LevenshteinSimBounded(x, y, best); s > best {
				best = s
				if best == 1 {
					break
				}
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// ---------------------------------------------------------------------------
// Reference implementations (pre-optimization) for the equivalence tests.

func mongeElkanRef(a, b string) float64 {
	return mongeElkanTokensRef(Tokens(a), Tokens(b))
}

func mongeElkanSymRef(a, b string) float64 {
	ta, tb := Tokens(a), Tokens(b)
	return (mongeElkanTokensRef(ta, tb) + mongeElkanTokensRef(tb, ta)) / 2
}

func mongeElkanTokensRef(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	var sum float64
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := levenshteinSimRef(x, y); s > best {
				best = s
				if best == 1 {
					break
				}
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}
