package strsim

// MongeElkan computes the Monge-Elkan similarity between two strings using
// LevenshteinSim as the inner (token-level) similarity, exactly as the
// paper's LABEL metrics do. The strings are tokenized with the shared
// normalizer; for each token of a the best-matching token of b is found and
// the scores are averaged.
//
// Monge-Elkan is asymmetric; Sym averages both directions and is what
// callers should normally use.
func MongeElkan(a, b string) float64 {
	ta, tb := Tokens(a), Tokens(b)
	return mongeElkanTokens(ta, tb)
}

// MongeElkanSym returns the symmetrized Monge-Elkan similarity,
// (ME(a,b) + ME(b,a)) / 2.
func MongeElkanSym(a, b string) float64 {
	ta, tb := Tokens(a), Tokens(b)
	return (mongeElkanTokens(ta, tb) + mongeElkanTokens(tb, ta)) / 2
}

func mongeElkanTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	var sum float64
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := LevenshteinSim(x, y); s > best {
				best = s
				if best == 1 {
					break
				}
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}
