package strsim

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// PreparedLabel is a label that has been normalized, tokenized, interned,
// and vectorized exactly once. Every similarity the pipeline computes over
// a label — Monge-Elkan against another label, a binary term vector for
// cosine — starts from these cached forms, so the per-comparison cost is
// the comparison itself, never re-tokenization. PreparedLabel is immutable
// after construction and safe to share across goroutines.
type PreparedLabel struct {
	// Raw is the string Prepare was given.
	Raw string
	// Norm is Normalize(Raw).
	Norm string
	// Tokens are the normalized tokens of Raw.
	Tokens []string
	// ids are the interned token IDs, parallel to Tokens; nil when the
	// interner was full (the similarity methods then run the string
	// kernels, which compute exactly the same values).
	ids []int32
	// vec is the sorted binary term vector over Tokens with its norm
	// cached (identical to ToSparse(BinaryTermVector(Raw))).
	vec SparseVec
}

// Prepare normalizes, tokenizes, interns, and vectorizes s.
func Prepare(s string) *PreparedLabel {
	p := &PreparedLabel{Raw: s, Norm: Normalize(s)}
	if p.Norm != "" {
		p.Tokens = strings.Fields(p.Norm)
	}
	if len(p.Tokens) > 0 {
		ids := make([]int32, len(p.Tokens))
		interned := true
		for i, t := range p.Tokens {
			if ids[i] = internString(t); ids[i] == noTokenID {
				interned = false
			}
		}
		if interned {
			p.ids = ids
		}
		uniq := make([]string, len(p.Tokens))
		copy(uniq, p.Tokens)
		sort.Strings(uniq)
		elems := make([]KV, 0, len(uniq))
		for i, t := range uniq {
			if i > 0 && uniq[i-1] == t {
				continue
			}
			elems = append(elems, KV{K: t, V: 1})
		}
		p.vec = SparseVec{Elems: elems, norm: normElems(elems)}
	}
	return p
}

// prepCache is the process-wide prepared-label cache behind PrepareCached.
// Capped: once prepCacheCap distinct strings have been prepared, further
// misses are computed but not stored (the pipeline's label vocabulary is
// corpus bounded and fits comfortably; the cap only guards pathological
// callers).
var (
	prepCache sync.Map // string → *PreparedLabel
	prepCount atomic.Int64
)

const prepCacheCap = 1 << 19

// PrepareCached returns the cached prepared form of s, preparing it on
// first sight. Labels, headers, property names, and cell values recur
// throughout a run, so this is the entry point the pipeline's metrics use.
func PrepareCached(s string) *PreparedLabel {
	if v, ok := prepCache.Load(s); ok {
		return v.(*PreparedLabel)
	}
	p := Prepare(s)
	if prepCount.Load() < prepCacheCap {
		if _, loaded := prepCache.LoadOrStore(s, p); !loaded {
			prepCount.Add(1)
		}
	}
	return p
}

// TermCosine returns the binary term-vector cosine of two labels through
// the prepared-label cache: equal to
// Cosine(BinaryTermVector(x), BinaryTermVector(y)) without rebuilding
// either map (binary vectors make every product term 1, so accumulation
// order cannot change the float result). This is the allocation-free form
// the BOW-style hot paths should use for raw strings.
func TermCosine(x, y string) float64 {
	return CosineSparse(PrepareCached(x).vec, PrepareCached(y).vec)
}

// NumTokens returns the number of tokens.
func (p *PreparedLabel) NumTokens() int { return len(p.Tokens) }

// TermVec returns the label's sorted binary term vector (weight 1 per
// distinct token, Euclidean norm cached). The caller must not mutate it.
func (p *PreparedLabel) TermVec() SparseVec { return p.vec }

// interned reports whether both labels carry interned IDs (empty labels
// have no IDs but also nothing to compare; treat them as interned so the
// empty/empty and empty/non-empty cases take the ID path's edge handling).
func bothInterned(p, q *PreparedLabel) bool {
	return (p.ids != nil || len(p.Tokens) == 0) && (q.ids != nil || len(q.Tokens) == 0)
}

// MongeElkan returns the directed Monge-Elkan similarity ME(p, q),
// exactly equal to MongeElkan(p.Raw, q.Raw).
func (p *PreparedLabel) MongeElkan(q *PreparedLabel) float64 {
	if bothInterned(p, q) {
		return mongeElkanIDs(p.ids, q.ids)
	}
	return mongeElkanStrs(p.Tokens, q.Tokens)
}

// MongeElkanSym returns the symmetrized Monge-Elkan similarity, exactly
// equal to MongeElkanSym(p.Raw, q.Raw).
func (p *PreparedLabel) MongeElkanSym(q *PreparedLabel) float64 {
	if bothInterned(p, q) {
		return (mongeElkanIDs(p.ids, q.ids) + mongeElkanIDs(q.ids, p.ids)) / 2
	}
	return (mongeElkanStrs(p.Tokens, q.Tokens) + mongeElkanStrs(q.Tokens, p.Tokens)) / 2
}
