package strsim

import (
	"math"
	"testing"
)

func TestToSparseSorted(t *testing.T) {
	v := ToSparse(map[string]float64{"c": 3, "a": 1, "b": 2})
	if v.Len() != 3 {
		t.Fatalf("len = %d", v.Len())
	}
	for i := 1; i < v.Len(); i++ {
		if v.Elems[i-1].K >= v.Elems[i].K {
			t.Fatalf("not sorted: %v", v)
		}
	}
	if ToSparse(nil).Len() != 0 || ToSparse(map[string]float64{}).Len() != 0 {
		t.Error("empty input must yield an empty vector")
	}
}

// TestCosineSparseHandBuilt covers the zero-norm fallback for vectors
// assembled without ToSparse.
func TestCosineSparseHandBuilt(t *testing.T) {
	a := SparseVec{Elems: []KV{{K: "x", V: 2}}}
	b := SparseVec{Elems: []KV{{K: "x", V: 3}}}
	if got := CosineSparse(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("parallel hand-built vectors: cosine = %v, want 1", got)
	}
}

func TestCosineSparseMatchesCosine(t *testing.T) {
	cases := []struct{ a, b map[string]float64 }{
		{map[string]float64{"x": 1, "y": 1}, map[string]float64{"x": 1, "z": 1}},
		{map[string]float64{"x": 0.5, "y": 0.25, "z": 0.125}, map[string]float64{"y": 0.25, "z": 2}},
		{map[string]float64{"x": 1}, map[string]float64{"y": 1}},
		{nil, nil},
		{map[string]float64{"x": 1}, nil},
	}
	for _, c := range cases {
		got := CosineSparse(ToSparse(c.a), ToSparse(c.b))
		want := Cosine(c.a, c.b)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("CosineSparse(%v, %v) = %v, Cosine = %v", c.a, c.b, got, want)
		}
	}
}

// TestCosineSparseOrderStable is the determinism property the sparse form
// exists for: identical vector content gives bit-identical scores no
// matter how the source maps were built or iterated.
func TestCosineSparseOrderStable(t *testing.T) {
	a := map[string]float64{"aa": 0.3, "bb": 0.7, "cc": 0.11, "dd": 0.23, "ee": 0.31}
	b := map[string]float64{"aa": 0.17, "cc": 0.5, "ee": 0.29, "ff": 0.41}
	ref := CosineSparse(ToSparse(a), ToSparse(b))
	for i := 0; i < 50; i++ {
		// Rebuild the maps so iteration order inside ToSparse varies.
		a2 := make(map[string]float64, len(a))
		for k, v := range a {
			a2[k] = v
		}
		b2 := make(map[string]float64, len(b))
		for k, v := range b {
			b2[k] = v
		}
		if got := CosineSparse(ToSparse(a2), ToSparse(b2)); got != ref {
			t.Fatalf("iteration %d: %v != %v", i, got, ref)
		}
	}
}
