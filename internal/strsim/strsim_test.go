package strsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Hello, World!", "hello world"},
		{"  A--B  ", "a b"},
		{"Déjà Vu", "déjà vu"},
		{"", ""},
		{"!!!", ""},
		{"Tom Brady (QB)", "tom brady qb"},
		{"St. Mary's", "st mary s"},
		{"123-456", "123 456"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("The Quick, Brown Fox!")
	want := []string{"the", "quick", "brown", "fox"}
	if len(got) != len(want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if Tokens("") != nil {
		t.Error("Tokens(\"\") should be nil")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"café", "cafe", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 32 {
			a = a[:32]
		}
		if len(b) > 32 {
			b = b[:32]
		}
		if len(c) > 32 {
			c = c[:32]
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSim(t *testing.T) {
	if s := LevenshteinSim("abc", "abc"); s != 1 {
		t.Errorf("identical strings sim = %v, want 1", s)
	}
	if s := LevenshteinSim("abc", "xyz"); s != 0 {
		t.Errorf("disjoint strings sim = %v, want 0", s)
	}
	if s := LevenshteinSim("abcd", "abce"); math.Abs(s-0.75) > 1e-9 {
		t.Errorf("sim = %v, want 0.75", s)
	}
}

func TestLevenshteinSimRange(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 48 {
			a = a[:48]
		}
		if len(b) > 48 {
			b = b[:48]
		}
		s := LevenshteinSim(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMongeElkan(t *testing.T) {
	if s := MongeElkanSym("Tom Brady", "tom brady"); s != 1 {
		t.Errorf("case-insensitive identical = %v, want 1", s)
	}
	// Token reordering should not matter for Monge-Elkan.
	if s := MongeElkanSym("Brady Tom", "Tom Brady"); s != 1 {
		t.Errorf("reordered tokens = %v, want 1", s)
	}
	// A shared surname should score clearly above zero but below one.
	s := MongeElkanSym("Tom Brady", "Kyle Brady")
	if s <= 0.3 || s >= 1 {
		t.Errorf("partial match = %v, want in (0.3, 1)", s)
	}
	if s := MongeElkanSym("", ""); s != 1 {
		t.Errorf("both empty = %v, want 1", s)
	}
	if s := MongeElkanSym("abc", ""); s != 0 {
		t.Errorf("one empty = %v, want 0", s)
	}
}

func TestMongeElkanRange(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		s := MongeElkanSym(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosine(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 1}
	b := map[string]float64{"x": 1, "y": 1}
	if s := Cosine(a, b); math.Abs(s-1) > 1e-9 {
		t.Errorf("identical vectors = %v, want 1", s)
	}
	c := map[string]float64{"z": 1}
	if s := Cosine(a, c); s != 0 {
		t.Errorf("orthogonal vectors = %v, want 0", s)
	}
	d := map[string]float64{"x": 1}
	if s := Cosine(a, d); math.Abs(s-1/math.Sqrt2) > 1e-9 {
		t.Errorf("half overlap = %v, want %v", s, 1/math.Sqrt2)
	}
	if s := Cosine(nil, nil); s != 1 {
		t.Errorf("both empty = %v, want 1", s)
	}
	if s := Cosine(a, nil); s != 0 {
		t.Errorf("one empty = %v, want 0", s)
	}
}

func TestCosineSymmetric(t *testing.T) {
	f := func(ka, kb []string) bool {
		a := map[string]float64{}
		b := map[string]float64{}
		for i, k := range ka {
			a[k] = float64(i%5) + 1
		}
		for i, k := range kb {
			b[k] = float64(i%3) + 1
		}
		return math.Abs(Cosine(a, b)-Cosine(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJaccard(t *testing.T) {
	a := map[string]bool{"x": true, "y": true}
	b := map[string]bool{"y": true, "z": true}
	if s := Jaccard(a, b); math.Abs(s-1.0/3.0) > 1e-9 {
		t.Errorf("Jaccard = %v, want 1/3", s)
	}
	if s := JaccardStrings("the cat", "the cat"); s != 1 {
		t.Errorf("identical strings = %v, want 1", s)
	}
	if s := Jaccard(nil, nil); s != 1 {
		t.Errorf("both empty = %v, want 1", s)
	}
}

func TestTermVectors(t *testing.T) {
	v := TermVector("a b a", "b c")
	if v["a"] != 2 || v["b"] != 2 || v["c"] != 1 {
		t.Errorf("TermVector = %v", v)
	}
	bv := BinaryTermVector("a b a", "b c")
	if bv["a"] != 1 || bv["b"] != 1 || bv["c"] != 1 {
		t.Errorf("BinaryTermVector = %v", bv)
	}
}

func TestMerge(t *testing.T) {
	dst := map[string]float64{"a": 1}
	dst = Merge(dst, map[string]float64{"a": 2, "b": 3})
	if dst["a"] != 3 || dst["b"] != 3 {
		t.Errorf("Merge = %v", dst)
	}
	var nilDst map[string]float64
	got := MergeBinary(nilDst, map[string]float64{"x": 9})
	if got["x"] != 1 {
		t.Errorf("MergeBinary on nil dst = %v", got)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	x := strings.Repeat("abcdefgh", 4)
	y := strings.Repeat("abcdxfgh", 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein(x, y)
	}
}

func BenchmarkMongeElkan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MongeElkanSym("Thomas Edward Patrick Brady", "Tom Brady Jr")
	}
}
