// Package strsim provides the string similarity primitives used throughout
// the LTEE pipeline: Levenshtein and Monge-Elkan similarities for label
// comparison, Jaccard and cosine similarities for token sets and term
// vectors, and a shared tokenizer/normalizer.
//
// All similarity functions return values in [0, 1], where 1 means identical.
//
// # Hot-path kernels
//
// Every stage of the pipeline — blocking, clustering, matching, new
// detection, fuzzy search — bottoms out in this package, so the kernels
// are built to be allocation-free and to never repeat work:
//
//   - Levenshtein / LevenshteinSim use pooled DP rows, an ASCII fast path
//     (no rune decoding), and common prefix/suffix trimming. Rune lengths
//     are computed once and shared between the distance and its
//     normalization.
//   - LevenshteinBounded and LevenshteinSimBounded are the kernels for
//     bounded checks and best-candidate searches: a banded DP abandons
//     pairs that cannot beat the caller's floor (or max distance), so
//     high floors cost O(k·n) instead of O(n²).
//   - MongeElkan / MongeElkanSym run on interned token IDs with a sharded
//     memo of token-pair similarities: the corpus vocabulary is
//     heavy-tailed, so the same token pairs recur millions of times.
//   - PreparedLabel (via Prepare or the process-wide PrepareCached)
//     normalizes, tokenizes, interns, and vectorizes a label exactly once
//     per lifetime; use it whenever the same string is compared more than
//     once. TermVec returns the label's sorted binary term vector for
//     merge-join cosines (CosineSparse).
//
// The pre-optimization implementations are retained as unexported
// reference functions, and randomized equivalence tests
// (kernel_test.go) prove the optimized kernels return exactly — bit for
// bit — the reference values, so callers can switch freely between the
// prepared and plain entry points without output drift.
package strsim

import (
	"strings"
	"unicode"
)

// Normalize lower-cases s, replaces any non-alphanumeric rune with a space,
// and collapses runs of whitespace. It is the canonical label normalization
// used by the blocking index, the BOW metrics, and the gold standard.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := true // trim leading spaces
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			prevSpace = false
		default:
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Tokens splits s into normalized word tokens. Empty input yields nil.
func Tokens(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Fields(n)
}

// TokenSet returns the set of normalized tokens of s.
func TokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokens(s) {
		set[t] = true
	}
	return set
}

// TermVector counts normalized token occurrences in each of the given
// strings, producing a term-frequency vector.
func TermVector(ss ...string) map[string]float64 {
	v := make(map[string]float64)
	for _, s := range ss {
		for _, t := range Tokens(s) {
			v[t]++
		}
	}
	return v
}

// BinaryTermVector is like TermVector but records only presence (weight 1),
// matching the paper's "bag-of-words binary term vector".
func BinaryTermVector(ss ...string) map[string]float64 {
	v := make(map[string]float64)
	for _, s := range ss {
		for _, t := range Tokens(s) {
			v[t] = 1
		}
	}
	return v
}
