// Package strsim provides the string similarity primitives used throughout
// the LTEE pipeline: Levenshtein and Monge-Elkan similarities for label
// comparison, Jaccard and cosine similarities for token sets and term
// vectors, and a shared tokenizer/normalizer.
//
// All similarity functions return values in [0, 1], where 1 means identical.
package strsim

import (
	"strings"
	"unicode"
)

// Normalize lower-cases s, replaces any non-alphanumeric rune with a space,
// and collapses runs of whitespace. It is the canonical label normalization
// used by the blocking index, the BOW metrics, and the gold standard.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := true // trim leading spaces
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			prevSpace = false
		default:
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Tokens splits s into normalized word tokens. Empty input yields nil.
func Tokens(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Fields(n)
}

// TokenSet returns the set of normalized tokens of s.
func TokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokens(s) {
		set[t] = true
	}
	return set
}

// TermVector counts normalized token occurrences in each of the given
// strings, producing a term-frequency vector.
func TermVector(ss ...string) map[string]float64 {
	v := make(map[string]float64)
	for _, s := range ss {
		for _, t := range Tokens(s) {
			v[t]++
		}
	}
	return v
}

// BinaryTermVector is like TermVector but records only presence (weight 1),
// matching the paper's "bag-of-words binary term vector".
func BinaryTermVector(ss ...string) map[string]float64 {
	v := make(map[string]float64)
	for _, s := range ss {
		for _, t := range Tokens(s) {
			v[t] = 1
		}
	}
	return v
}
