package strsim

import (
	"cmp"
	"math"
	"slices"
	"sync"
)

// cosineKeys recycles the sorted-key scratch of Cosine so the determinism
// fix stays allocation-free on the BOW kernel path.
var cosineKeys = sync.Pool{New: func() any { return new([]string) }}

// Cosine returns the cosine similarity of two sparse vectors. Empty vectors
// have similarity 0 unless both are empty, in which case it is 1.
//
// Accumulation runs over sorted keys: float addition is not associative,
// so summing in map iteration order makes the low bits differ run to run
// (CosineSparse, the hot-path form, is sorted by construction).
func Cosine(a, b map[string]float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Iterate the smaller map for the dot product.
	if len(b) < len(a) {
		a, b = b, a
	}
	kp := cosineKeys.Get().(*[]string)
	defer cosineKeys.Put(kp)
	keys := (*kp)[:0]
	for k := range a {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	var dot, na float64
	for _, k := range keys {
		va := a[k]
		na += va * va
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	keys = keys[:0]
	for k := range b {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	var nb float64
	for _, k := range keys {
		vb := b[k]
		nb += vb * vb
	}
	*kp = keys
	if dot == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Jaccard returns the Jaccard similarity of two token sets.
func Jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// JaccardStrings tokenizes both strings and returns their Jaccard similarity.
func JaccardStrings(a, b string) float64 {
	return Jaccard(TokenSet(a), TokenSet(b))
}

// KV is one component of a sparse vector.
type KV struct {
	K string
	V float64
}

// SparseVec is a sparse vector with components sorted by key and the
// Euclidean norm cached at construction. The fixed component order makes
// float accumulations (dot products, norms) independent of map iteration
// order, so similarity scores built from a SparseVec are bit-identical
// across runs — map-backed Cosine is not when the values are not all
// equal, because float addition is not associative. The cached norm saves
// a full vector walk per cosine on hot paths where vectors are immutable
// and shared (the clusterer's per-table PHI vectors).
type SparseVec struct {
	// Elems are the components, sorted by key.
	Elems []KV
	// norm is the cached Euclidean norm of Elems (0 when hand-built;
	// CosineSparse then recomputes it).
	norm float64
}

// Len returns the number of components.
func (v SparseVec) Len() int { return len(v.Elems) }

// ToSparse converts a map vector into its sorted sparse form.
func ToSparse(m map[string]float64) SparseVec {
	if len(m) == 0 {
		return SparseVec{}
	}
	elems := make([]KV, 0, len(m))
	for k, v := range m {
		elems = append(elems, KV{K: k, V: v})
	}
	slices.SortFunc(elems, func(a, b KV) int { return cmp.Compare(a.K, b.K) })
	return SparseVec{Elems: elems, norm: normElems(elems)}
}

// CosineSparse returns the cosine similarity of two sorted sparse vectors
// via a merge join. Empty vectors have similarity 0 unless both are empty,
// in which case it is 1 (matching Cosine).
func CosineSparse(a, b SparseVec) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(a.Elems) && j < len(b.Elems) {
		switch {
		case a.Elems[i].K == b.Elems[j].K:
			dot += a.Elems[i].V * b.Elems[j].V
			i++
			j++
		case a.Elems[i].K < b.Elems[j].K:
			i++
		default:
			j++
		}
	}
	if dot == 0 {
		return 0
	}
	na, nb := a.norm, b.norm
	// A zero cached norm means the vector was built by hand rather than
	// through ToSparse (dot != 0 rules out genuinely zero vectors).
	if na == 0 {
		na = normElems(a.Elems)
	}
	if nb == 0 {
		nb = normElems(b.Elems)
	}
	return dot / (na * nb)
}

func normElems(elems []KV) float64 {
	var s float64
	for _, kv := range elems {
		s += kv.V * kv.V
	}
	return math.Sqrt(s)
}

// Merge adds src into dst (dst += src) and returns dst.
func Merge(dst, src map[string]float64) map[string]float64 {
	if dst == nil {
		dst = make(map[string]float64, len(src))
	}
	for k, v := range src {
		dst[k] += v
	}
	return dst
}

// MergeBinary sets every key of src in dst with weight 1.
func MergeBinary(dst, src map[string]float64) map[string]float64 {
	if dst == nil {
		dst = make(map[string]float64, len(src))
	}
	for k := range src {
		dst[k] = 1
	}
	return dst
}
