package strsim

import "math"

// Cosine returns the cosine similarity of two sparse vectors. Empty vectors
// have similarity 0 unless both are empty, in which case it is 1.
func Cosine(a, b map[string]float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Iterate the smaller map for the dot product.
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for k, va := range a {
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	if dot == 0 {
		return 0
	}
	return dot / (norm(a) * norm(b))
}

func norm(v map[string]float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Jaccard returns the Jaccard similarity of two token sets.
func Jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// JaccardStrings tokenizes both strings and returns their Jaccard similarity.
func JaccardStrings(a, b string) float64 {
	return Jaccard(TokenSet(a), TokenSet(b))
}

// Merge adds src into dst (dst += src) and returns dst.
func Merge(dst, src map[string]float64) map[string]float64 {
	if dst == nil {
		dst = make(map[string]float64, len(src))
	}
	for k, v := range src {
		dst[k] += v
	}
	return dst
}

// MergeBinary sets every key of src in dst with weight 1.
func MergeBinary(dst, src map[string]float64) map[string]float64 {
	if dst == nil {
		dst = make(map[string]float64, len(src))
	}
	for k := range src {
		dst[k] = 1
	}
	return dst
}
