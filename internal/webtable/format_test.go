package webtable

import (
	"testing"

	"repro/internal/dtype"
	"repro/internal/kb"
)

// TestSynthesizedValuesParse verifies that every non-empty value cell the
// generator emits is parseable under the property's data type — the
// formatting variety (mm:ss runtimes, 6'2" heights, textual dates, comma
// separators) must stay within what internal/dtype accepts.
func TestSynthesizedValuesParse(t *testing.T) {
	w := testWorld()
	c := Synthesize(w, DefaultSynthConfig(0.15))
	checked := 0
	for _, tb := range c.Tables {
		if tb.Truth == nil || tb.Truth.Class == "" {
			continue
		}
		for col, pid := range tb.Truth.ColProperty {
			if pid == "" {
				continue
			}
			prop, ok := w.KB.Property(tb.Truth.Class, pid)
			if !ok {
				t.Fatalf("provenance property %s not in schema", pid)
			}
			for r := 0; r < tb.NumRows(); r++ {
				cell := tb.Cell(r, col)
				if cell == "" {
					continue
				}
				if _, ok := dtype.Parse(cell, prop.Kind); !ok {
					t.Fatalf("table %d cell %q unparseable as %v (property %s)",
						tb.ID, cell, prop.Kind, pid)
				}
				checked++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d value cells checked; corpus too sparse", checked)
	}
}

// TestSynthesizedLabelsNonEmpty: every row of a class table has a label.
func TestSynthesizedLabelsNonEmpty(t *testing.T) {
	w := testWorld()
	c := Synthesize(w, DefaultSynthConfig(0.1))
	for _, tb := range c.Tables {
		if tb.Truth == nil || tb.Truth.Class == "" {
			continue
		}
		for r := 0; r < tb.NumRows(); r++ {
			if tb.Cell(r, 0) == "" {
				t.Fatalf("table %d row %d has empty label", tb.ID, r)
			}
		}
	}
}

// TestWrongValueRateApproximate: with a large wrong-value rate, a sizable
// fraction of cells disagree with the world truth; with rate zero, cells
// agree (up to outdated-numeric noise, disabled here too).
func TestWrongValueRateApproximate(t *testing.T) {
	w := testWorld()
	measure := func(wrongRate float64) float64 {
		cfg := DefaultSynthConfig(0.15)
		cfg.WrongValueRate = wrongRate
		cfg.OutdatedNumericRate = 0
		cfg.EmptyCellRate = 0
		c := Synthesize(w, cfg)
		th := dtype.DefaultThresholds()
		agree, total := 0, 0
		for _, tb := range c.Tables {
			if tb.Truth == nil || tb.Truth.Class == "" {
				continue
			}
			for col, pid := range tb.Truth.ColProperty {
				if pid == "" {
					continue
				}
				prop, _ := w.KB.Property(tb.Truth.Class, pid)
				for r := 0; r < tb.NumRows(); r++ {
					uid := tb.Truth.RowEntity[r]
					if uid < 0 {
						continue
					}
					truth, ok := w.Entities[uid].Truth[pid]
					if !ok {
						continue
					}
					v, ok := dtype.Parse(tb.Cell(r, col), prop.Kind)
					if !ok {
						continue
					}
					total++
					if th.Equal(v, truth) {
						agree++
					}
				}
			}
		}
		if total == 0 {
			t.Fatal("no comparable cells")
		}
		return float64(agree) / float64(total)
	}
	clean := measure(0)
	noisy := measure(0.4)
	if clean < 0.97 {
		t.Errorf("noise-free corpus agreement = %.3f, want ≈ 1", clean)
	}
	if noisy > clean-0.2 {
		t.Errorf("noisy corpus agreement %.3f should be well below clean %.3f", noisy, clean)
	}
}

// TestJunkTablesStayUnmatched: junk tables carry no class provenance and no
// column properties.
func TestJunkTablesStayUnmatched(t *testing.T) {
	w := testWorld()
	c := Synthesize(w, DefaultSynthConfig(0.1))
	junk := 0
	for _, tb := range c.Tables {
		if tb.Truth.Class != "" {
			continue
		}
		junk++
		for _, pid := range tb.Truth.ColProperty {
			if pid != "" {
				t.Fatal("junk table has a mapped column")
			}
		}
		for _, uid := range tb.Truth.RowEntity {
			if uid != -1 {
				t.Fatal("junk table row references a world entity")
			}
		}
	}
	if junk == 0 {
		t.Fatal("no junk tables generated")
	}
}

// TestClassShortNamePassThrough covers the default branch.
func TestClassShortNamePassThrough(t *testing.T) {
	if got := kb.ClassShortName(kb.ClassRegion); got != string(kb.ClassRegion) {
		t.Errorf("unknown class short name = %q", got)
	}
}
