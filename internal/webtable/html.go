package webtable

import (
	"strings"
)

// ExtractHTML parses an HTML document and extracts relational tables,
// substituting for the WDC extraction pipeline. The parser is a small
// hand-written tokenizer (stdlib only): it recognizes <table>, <tr>, <th>,
// <td>, <caption>, honors colspan by cell duplication, strips nested
// markup, and decodes common entities.
//
// A parsed table is kept only if it passes the relational heuristics the
// WDC corpus applies: at least 2 columns and 1 body row after header
// detection, a rectangular layout, and not a layout table (those typically
// have a single giant cell or no header-like first row).
func ExtractHTML(html string) []*Table {
	var tables []*Table
	for _, raw := range findTables(html) {
		if t := parseTable(raw); t != nil {
			tables = append(tables, t)
		}
	}
	return tables
}

// findTables returns the inner HTML of every top-level <table> element.
// Nested tables are treated as content of their parent (their markup is
// stripped), which matches the WDC extractor's behaviour of skipping layout
// nesting.
func findTables(html string) []string {
	var out []string
	lower := strings.ToLower(html)
	i := 0
	for {
		start := indexFrom(lower, "<table", i)
		if start < 0 {
			return out
		}
		open := strings.IndexByte(lower[start:], '>')
		if open < 0 {
			return out
		}
		bodyStart := start + open + 1
		depth := 1
		j := bodyStart
		for depth > 0 {
			nextOpen := indexFrom(lower, "<table", j)
			nextClose := indexFrom(lower, "</table", j)
			if nextClose < 0 {
				return out // unterminated table: drop it
			}
			if nextOpen >= 0 && nextOpen < nextClose {
				depth++
				j = nextOpen + 6
			} else {
				depth--
				j = nextClose + 7
			}
		}
		closeStart := strings.LastIndex(lower[:j], "</table")
		out = append(out, html[bodyStart:closeStart])
		i = j
	}
}

// stripNestedTables removes any <table>…</table> blocks nested inside a
// table's inner HTML, keeping only the outer table's own rows.
func stripNestedTables(inner string) string {
	lower := strings.ToLower(inner)
	if !strings.Contains(lower, "<table") {
		return inner
	}
	var b strings.Builder
	i := 0
	for {
		start := indexFrom(lower, "<table", i)
		if start < 0 {
			b.WriteString(inner[i:])
			return b.String()
		}
		b.WriteString(inner[i:start])
		depth := 1
		j := start + 6
		for depth > 0 {
			nextOpen := indexFrom(lower, "<table", j)
			nextClose := indexFrom(lower, "</table", j)
			if nextClose < 0 {
				return b.String() // unterminated nested table: drop rest
			}
			if nextOpen >= 0 && nextOpen < nextClose {
				depth++
				j = nextOpen + 6
			} else {
				depth--
				j = nextClose + 7
			}
		}
		end := strings.IndexByte(lower[j:], '>')
		if end < 0 {
			return b.String()
		}
		i = j + end + 1
	}
}

func indexFrom(s, sub string, from int) int {
	if from >= len(s) {
		return -1
	}
	idx := strings.Index(s[from:], sub)
	if idx < 0 {
		return -1
	}
	return from + idx
}

// parseTable converts the inner HTML of a table element into a Table, or
// nil when the element is not a relational table.
func parseTable(inner string) *Table {
	inner = stripNestedTables(inner)
	caption := textBetween(inner, "<caption", "</caption>")
	var rows [][]string
	var headerFlags []bool
	lower := strings.ToLower(inner)
	i := 0
	for {
		trStart := indexFrom(lower, "<tr", i)
		if trStart < 0 {
			break
		}
		trOpen := strings.IndexByte(lower[trStart:], '>')
		if trOpen < 0 {
			break
		}
		cellStart := trStart + trOpen + 1
		trEnd := indexFrom(lower, "</tr", cellStart)
		if trEnd < 0 {
			trEnd = len(inner)
		}
		rowHTML := inner[cellStart:trEnd]
		cells, isHeader := parseRow(rowHTML)
		if len(cells) > 0 {
			rows = append(rows, cells)
			headerFlags = append(headerFlags, isHeader)
		}
		i = trEnd + 4
	}
	if len(rows) < 2 {
		return nil
	}
	// Header detection: the first row if it used <th>, else if every cell
	// of the first row is non-numeric text while later rows are not.
	headerIdx := -1
	if headerFlags[0] {
		headerIdx = 0
	} else if looksLikeHeader(rows[0], rows[1:]) {
		headerIdx = 0
	}
	if headerIdx != 0 {
		return nil // relational web tables carry a header row
	}
	headers := rows[0]
	body := rows[1:]
	width := len(headers)
	if width < 2 {
		return nil
	}
	// Rectangularize: drop rows of deviating width (layout artifacts);
	// keep the table only if most rows conform.
	var clean [][]string
	for _, r := range body {
		if len(r) == width {
			clean = append(clean, r)
		}
	}
	if len(clean) == 0 || len(clean)*2 < len(body) {
		return nil
	}
	t := &Table{Caption: caption, Headers: headers, Cells: clean, LabelCol: -1}
	if err := t.Validate(); err != nil {
		return nil
	}
	return t
}

// parseRow extracts the cells of a <tr> body, expanding colspan, and
// reports whether the row used <th> cells.
func parseRow(rowHTML string) (cells []string, isHeader bool) {
	lower := strings.ToLower(rowHTML)
	i := 0
	thCount, tdCount := 0, 0
	for {
		thIdx := indexFrom(lower, "<th", i)
		tdIdx := indexFrom(lower, "<td", i)
		var start int
		var isTH bool
		switch {
		case thIdx < 0 && tdIdx < 0:
			if thCount > 0 && tdCount == 0 {
				isHeader = true
			}
			return cells, isHeader
		case tdIdx < 0 || (thIdx >= 0 && thIdx < tdIdx):
			start, isTH = thIdx, true
		default:
			start, isTH = tdIdx, false
		}
		open := strings.IndexByte(lower[start:], '>')
		if open < 0 {
			return cells, isHeader
		}
		attrs := rowHTML[start+3 : start+open]
		contentStart := start + open + 1
		closeTag := "</th"
		if !isTH {
			closeTag = "</td"
		}
		end := indexFrom(lower, closeTag, contentStart)
		nextCell := nextCellStart(lower, contentStart)
		if end < 0 || (nextCell >= 0 && nextCell < end) {
			end = nextCell
		}
		if end < 0 {
			end = len(rowHTML)
		}
		text := stripTags(rowHTML[contentStart:end])
		span := colspan(attrs)
		for s := 0; s < span; s++ {
			cells = append(cells, text)
		}
		if isTH {
			thCount++
		} else {
			tdCount++
		}
		i = end + 1
	}
}

func nextCellStart(lower string, from int) int {
	th := indexFrom(lower, "<th", from)
	td := indexFrom(lower, "<td", from)
	switch {
	case th < 0:
		return td
	case td < 0:
		return th
	case th < td:
		return th
	default:
		return td
	}
}

// colspan parses a colspan attribute out of a tag's attribute string.
func colspan(attrs string) int {
	lower := strings.ToLower(attrs)
	idx := strings.Index(lower, "colspan")
	if idx < 0 {
		return 1
	}
	rest := lower[idx+len("colspan"):]
	rest = strings.TrimLeft(rest, " =\"'")
	n := 0
	for _, r := range rest {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	if n < 1 || n > 100 {
		return 1
	}
	return n
}

// looksLikeHeader reports whether row could be a header given the body
// rows: all its cells are non-empty, none parse as numbers, and at least
// one body row has a numeric cell in a column where the candidate header
// is textual.
func looksLikeHeader(row []string, body [][]string) bool {
	if len(body) == 0 {
		return false
	}
	for _, c := range row {
		t := strings.TrimSpace(c)
		if t == "" || isNumericCell(t) {
			return false
		}
	}
	return true
}

func isNumericCell(s string) bool {
	digits := 0
	for _, r := range s {
		if r >= '0' && r <= '9' {
			digits++
		}
	}
	return digits*2 > len(s)
}

// textBetween extracts the text content of the first occurrence of the
// element opened by openPrefix (e.g. "<caption") and closed by closeTag.
func textBetween(html, openPrefix, closeTag string) string {
	lower := strings.ToLower(html)
	start := strings.Index(lower, openPrefix)
	if start < 0 {
		return ""
	}
	open := strings.IndexByte(lower[start:], '>')
	if open < 0 {
		return ""
	}
	contentStart := start + open + 1
	end := indexFrom(lower, strings.ToLower(closeTag), contentStart)
	if end < 0 {
		return ""
	}
	return stripTags(html[contentStart:end])
}

// stripTags removes markup, decodes common entities, and collapses
// whitespace.
func stripTags(s string) string {
	var b strings.Builder
	depth := 0
	for _, r := range s {
		switch {
		case r == '<':
			depth++
		case r == '>':
			if depth > 0 {
				depth--
			}
		case depth == 0:
			b.WriteRune(r)
		}
	}
	return strings.Join(strings.Fields(decodeEntities(b.String())), " ")
}

var entityReplacer = strings.NewReplacer(
	"&amp;", "&",
	"&lt;", "<",
	"&gt;", ">",
	"&quot;", `"`,
	"&#39;", "'",
	"&apos;", "'",
	"&nbsp;", " ",
	"&ndash;", "-",
	"&mdash;", "-",
)

func decodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entityReplacer.Replace(s)
}
