package webtable

import "testing"

const sampleHTML = `
<html><body>
<h1>Roster</h1>
<table>
  <caption>2010 Draft Class</caption>
  <tr><th>Player</th><th>Position</th><th>College</th></tr>
  <tr><td>Sam Bradford</td><td>QB</td><td>Oklahoma</td></tr>
  <tr><td>Ndamukong Suh</td><td>DT</td><td>Nebraska</td></tr>
</table>
<p>Some text.</p>
<table>
  <tr><td>layout</td></tr>
</table>
</body></html>`

func TestExtractHTMLBasic(t *testing.T) {
	tables := ExtractHTML(sampleHTML)
	if len(tables) != 1 {
		t.Fatalf("extracted %d tables, want 1 (layout table rejected)", len(tables))
	}
	tb := tables[0]
	if tb.Caption != "2010 Draft Class" {
		t.Errorf("caption = %q", tb.Caption)
	}
	if tb.NumCols() != 3 || tb.NumRows() != 2 {
		t.Fatalf("dims = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if tb.Headers[1] != "Position" {
		t.Errorf("header = %q", tb.Headers[1])
	}
	if tb.Cell(1, 2) != "Nebraska" {
		t.Errorf("cell = %q", tb.Cell(1, 2))
	}
}

func TestExtractHTMLHeaderFromTDs(t *testing.T) {
	// Header detection without <th>: textual first row over numeric body.
	html := `<table>
	<tr><td>City</td><td>Population</td></tr>
	<tr><td>Springfield</td><td>30,000</td></tr>
	<tr><td>Oakville</td><td>12,500</td></tr>
	</table>`
	tables := ExtractHTML(html)
	if len(tables) != 1 {
		t.Fatalf("extracted %d tables", len(tables))
	}
	if tables[0].Headers[0] != "City" || tables[0].NumRows() != 2 {
		t.Errorf("table = %+v", tables[0])
	}
}

func TestExtractHTMLRejectsNumericFirstRow(t *testing.T) {
	html := `<table>
	<tr><td>1</td><td>30000</td></tr>
	<tr><td>2</td><td>12500</td></tr>
	</table>`
	if tables := ExtractHTML(html); len(tables) != 0 {
		t.Errorf("numeric-first-row table should be rejected, got %d", len(tables))
	}
}

func TestExtractHTMLColspan(t *testing.T) {
	html := `<table>
	<tr><th>Name</th><th colspan="2">Location</th></tr>
	<tr><td>Springfield</td><td>Ohio</td><td>US</td></tr>
	</table>`
	tables := ExtractHTML(html)
	if len(tables) != 1 {
		t.Fatalf("extracted %d", len(tables))
	}
	if tables[0].NumCols() != 3 {
		t.Errorf("colspan expansion: cols = %d, want 3", tables[0].NumCols())
	}
	if tables[0].Headers[1] != "Location" || tables[0].Headers[2] != "Location" {
		t.Errorf("headers = %v", tables[0].Headers)
	}
}

func TestExtractHTMLNestedMarkupAndEntities(t *testing.T) {
	html := `<table>
	<tr><th>Song</th><th>Artist</th></tr>
	<tr><td><a href="/x">Rock &amp; Roll</a></td><td><b>The  Band</b></td></tr>
	<tr><td>Caf&#39;e Blues</td><td>Miles&nbsp;D</td></tr>
	</table>`
	tables := ExtractHTML(html)
	if len(tables) != 1 {
		t.Fatalf("extracted %d", len(tables))
	}
	if got := tables[0].Cell(0, 0); got != "Rock & Roll" {
		t.Errorf("entity decoding = %q", got)
	}
	if got := tables[0].Cell(0, 1); got != "The Band" {
		t.Errorf("whitespace collapse = %q", got)
	}
	if got := tables[0].Cell(1, 1); got != "Miles D" {
		t.Errorf("nbsp = %q", got)
	}
}

func TestExtractHTMLNestedTable(t *testing.T) {
	html := `<table>
	<tr><th>A</th><th>B</th></tr>
	<tr><td>x<table><tr><td>inner</td></tr></table></td><td>y</td></tr>
	<tr><td>p</td><td>q</td></tr>
	</table>`
	tables := ExtractHTML(html)
	if len(tables) != 1 {
		t.Fatalf("extracted %d tables, want 1 (nested stripped)", len(tables))
	}
	if tables[0].NumRows() != 2 {
		t.Errorf("rows = %d", tables[0].NumRows())
	}
}

func TestExtractHTMLRaggedRowsDropped(t *testing.T) {
	html := `<table>
	<tr><th>A</th><th>B</th></tr>
	<tr><td>1</td><td>2</td></tr>
	<tr><td>solo</td></tr>
	<tr><td>3</td><td>4</td></tr>
	</table>`
	tables := ExtractHTML(html)
	if len(tables) != 1 {
		t.Fatalf("extracted %d", len(tables))
	}
	if tables[0].NumRows() != 2 {
		t.Errorf("ragged row should be dropped: rows = %d", tables[0].NumRows())
	}
}

func TestExtractHTMLMultipleTables(t *testing.T) {
	html := sampleHTML + `<table><tr><th>X</th><th>Y</th></tr><tr><td>a</td><td>b</td></tr></table>`
	tables := ExtractHTML(html)
	if len(tables) != 2 {
		t.Errorf("extracted %d tables, want 2", len(tables))
	}
}

func TestExtractHTMLEmptyAndMalformed(t *testing.T) {
	if tables := ExtractHTML(""); len(tables) != 0 {
		t.Error("empty document")
	}
	if tables := ExtractHTML("<table><tr><td>unclosed"); len(tables) != 0 {
		t.Error("unterminated table should be dropped")
	}
	if tables := ExtractHTML("<p>no tables at all</p>"); len(tables) != 0 {
		t.Error("document without tables")
	}
}

func TestColspanParsing(t *testing.T) {
	cases := []struct {
		attrs string
		want  int
	}{
		{``, 1},
		{` colspan="3"`, 3},
		{` colspan=2`, 2},
		{` COLSPAN='4'`, 4},
		{` colspan="0"`, 1},
		{` colspan="9999"`, 1},
	}
	for _, c := range cases {
		if got := colspan(c.attrs); got != c.want {
			t.Errorf("colspan(%q) = %d, want %d", c.attrs, got, c.want)
		}
	}
}

func TestStripTags(t *testing.T) {
	if got := stripTags("<b>bold</b> and <i>italic</i>"); got != "bold and italic" {
		t.Errorf("stripTags = %q", got)
	}
	if got := stripTags("a &lt; b &gt; c"); got != "a < b > c" {
		t.Errorf("entities = %q", got)
	}
}

func BenchmarkExtractHTML(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractHTML(sampleHTML)
	}
}
