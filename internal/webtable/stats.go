package webtable

import "sort"

// CorpusStats summarizes row and column counts for Table 3 of the paper:
// average, median, min and max.
type CorpusStats struct {
	RowsAvg, RowsMedian   float64
	RowsMin, RowsMax      int
	ColsAvg, ColsMedian   float64
	ColsMin, ColsMax      int
	Tables, Rows, Columns int
}

// Stats computes the corpus characteristics.
func (c *Corpus) Stats() CorpusStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var s CorpusStats
	if len(c.Tables) == 0 {
		return s
	}
	rows := make([]int, len(c.Tables))
	cols := make([]int, len(c.Tables))
	for i, t := range c.Tables {
		rows[i] = t.NumRows()
		cols[i] = t.NumCols()
		s.Rows += rows[i]
		s.Columns += cols[i]
	}
	s.Tables = len(c.Tables)
	s.RowsAvg = float64(s.Rows) / float64(s.Tables)
	s.ColsAvg = float64(s.Columns) / float64(s.Tables)
	sort.Ints(rows)
	sort.Ints(cols)
	s.RowsMin, s.RowsMax = rows[0], rows[len(rows)-1]
	s.ColsMin, s.ColsMax = cols[0], cols[len(cols)-1]
	s.RowsMedian = median(rows)
	s.ColsMedian = median(cols)
	return s
}

func median(sorted []int) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return float64(sorted[n/2])
	}
	return float64(sorted[n/2-1]+sorted[n/2]) / 2
}
