package webtable

import (
	"fmt"
	"math/rand"

	"repro/internal/dtype"
	"repro/internal/kb"
	"repro/internal/world"
)

// SynthConfig controls the synthetic corpus generator.
type SynthConfig struct {
	Seed int64
	// TablesPerClass is the number of tables generated per evaluation
	// class. Zero entries default per DefaultSynthConfig.
	TablesPerClass map[kb.ClassID]int
	// JunkTables is the number of non-evaluation-class tables mixed in
	// (product lists, schedules) that table-to-class matching must reject.
	JunkTables int
	// WrongValueRate is the probability that a generated cell carries a
	// wrong value (the paper attributes 35% of fact errors to wrong or
	// outdated table data).
	WrongValueRate float64
	// OutdatedNumericRate is the probability that a quantity cell is
	// perturbed by up to ±20% (outdated population numbers etc.).
	OutdatedNumericRate float64
	// TypoRate is the probability that a row label carries a small typo.
	TypoRate float64
	// EmptyCellRate is the probability that a value cell is left empty.
	EmptyCellRate float64
	// ExtraColRate is the probability that a table carries an additional
	// column that maps to no KB property (rank, notes).
	ExtraColRate float64
	// CrypticHeaderRate is the probability that a mapped column carries a
	// generic header ("info", "c3") that names neither the property nor
	// any of its alternative labels. Such columns can only be matched via
	// value-based evidence — in particular the duplicate-based matchers
	// of the second pipeline iteration, which is what makes the paper's
	// Table 6 recall jump possible.
	CrypticHeaderRate float64
	// ImplicitTableRate is the probability that a table is built around a
	// shared implicit property-value combination (e.g. "players of team
	// X"), which the IMPLICIT_ATT metrics exploit.
	ImplicitTableRate float64
}

// DefaultSynthConfig returns generator settings whose per-class table mix
// follows the proportions of Table 4: Song has by far the most tables,
// GF-Player and Settlement similar smaller counts. Scale multiplies table
// counts.
func DefaultSynthConfig(scale float64) SynthConfig {
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 3 {
			v = 3
		}
		return v
	}
	return SynthConfig{
		Seed: 7,
		TablesPerClass: map[kb.ClassID]int{
			kb.ClassGFPlayer:   s(105),
			kb.ClassSong:       s(580),
			kb.ClassSettlement: s(118),
		},
		JunkTables:          s(40),
		WrongValueRate:      0.04,
		OutdatedNumericRate: 0.06,
		TypoRate:            0.03,
		EmptyCellRate:       0.08,
		ExtraColRate:        0.35,
		ImplicitTableRate:   0.30,
		CrypticHeaderRate:   0.30,
	}
}

// webDensity gives the probability that a property appears as a column in a
// web table of the class. The ordering mirrors Table 12 of the paper: web
// tables emphasize positions/teams for players, artists/runtimes for songs,
// isPartOf/postal codes for settlements, while personal properties
// (birthDate, birthPlace) and writers/record labels are rare.
var webDensity = map[kb.ClassID]map[kb.PropertyID]float64{
	kb.ClassGFPlayer: {
		"dbo:position": 0.66, "dbo:team": 0.55, "dbo:college": 0.49,
		"dbo:weight": 0.42, "dbo:height": 0.30, "dbo:number": 0.21,
		"dbo:birthDate": 0.18, "dbo:draftPick": 0.17, "dbo:draftRound": 0.11,
		"dbo:draftYear": 0.05, "dbo:birthPlace": 0.02,
	},
	kb.ClassSong: {
		"dbo:musicalArtist": 0.77, "dbo:runtime": 0.62, "dbo:album": 0.28,
		"dbo:releaseDate": 0.25, "dbo:genre": 0.13, "dbo:recordLabel": 0.06,
		"dbo:writer": 0.01,
	},
	kb.ClassSettlement: {
		"dbo:isPartOf": 0.50, "dbo:postalCode": 0.28, "dbo:country": 0.21,
		"dbo:populationTotal": 0.21, "dbo:elevation": 0.04,
	},
}

// implicitProps lists per class the properties suitable as the shared
// implicit attribute of a table.
var implicitProps = map[kb.ClassID][]kb.PropertyID{
	kb.ClassGFPlayer:   {"dbo:team", "dbo:college", "dbo:position", "dbo:draftYear"},
	kb.ClassSong:       {"dbo:genre", "dbo:musicalArtist"},
	kb.ClassSettlement: {"dbo:country", "dbo:isPartOf"},
}

// Synthesize generates a corpus over the world's entities.
func Synthesize(w *world.World, cfg SynthConfig) *Corpus {
	g := &synthesizer{w: w, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	var tables []*Table
	for _, class := range kb.EvalClasses() {
		n := cfg.TablesPerClass[class]
		for i := 0; i < n; i++ {
			if t := g.classTable(class); t != nil {
				tables = append(tables, t)
			}
		}
	}
	for i := 0; i < cfg.JunkTables; i++ {
		tables = append(tables, g.junkTable())
	}
	g.rng.Shuffle(len(tables), func(i, j int) { tables[i], tables[j] = tables[j], tables[i] })
	return NewCorpus(tables)
}

type synthesizer struct {
	w   *world.World
	cfg SynthConfig
	rng *rand.Rand
}

// classTable generates one table describing entities of the given class.
func (g *synthesizer) classTable(class kb.ClassID) *Table {
	ents := g.w.ByClass[class]
	if len(ents) == 0 {
		return nil
	}
	// Row count: small tables dominate (corpus median is 2), with a tail
	// of larger tables.
	nRows := 2 + g.rng.Intn(4)
	if g.rng.Float64() < 0.30 {
		nRows = 5 + g.rng.Intn(16)
	}

	var pool []*world.Entity
	var implicitPid kb.PropertyID
	var implicitVal dtype.Value
	if g.rng.Float64() < g.cfg.ImplicitTableRate {
		// Implicit-attribute table: every row shares one property value
		// that does NOT appear as a column.
		pids := implicitProps[class]
		implicitPid = pids[g.rng.Intn(len(pids))]
		seedEnt := ents[g.rng.Intn(len(ents))]
		implicitVal = seedEnt.Truth[implicitPid]
		th := dtype.DefaultThresholds()
		for _, e := range ents {
			if v, ok := e.Truth[implicitPid]; ok && th.Equal(v, implicitVal) {
				pool = append(pool, e)
			}
		}
	}
	if len(pool) < 2 {
		pool, implicitPid = ents, ""
	}
	if nRows > len(pool) {
		nRows = len(pool)
	}

	// Sample distinct entities, weighted toward popular ones but with a
	// floor so long-tail entities appear repeatedly across tables.
	rows := g.sampleEntities(pool, nRows)

	// Column selection by web density; the implicit property is excluded.
	schema := g.w.KB.Schema(class)
	var props []kb.Property
	for _, p := range schema {
		if p.ID == implicitPid {
			continue
		}
		if g.rng.Float64() < webDensity[class][p.ID] {
			props = append(props, p)
		}
	}
	if len(props) == 0 {
		p := schema[g.rng.Intn(len(schema))]
		if p.ID == implicitPid && len(schema) > 1 {
			p = schema[(g.rng.Intn(len(schema)-1)+1+indexOfProp(schema, implicitPid))%len(schema)]
		}
		props = []kb.Property{p}
	}
	if len(props) > 4 {
		g.rng.Shuffle(len(props), func(i, j int) { props[i], props[j] = props[j], props[i] })
		props = props[:4]
	}

	// Layout: label column usually first; optional extra unmappable col.
	headers := []string{g.labelHeader(class)}
	colProps := []kb.PropertyID{""}
	for _, p := range props {
		headers = append(headers, g.headerFor(p))
		colProps = append(colProps, p.ID)
	}
	extraCol := -1
	if g.rng.Float64() < g.cfg.ExtraColRate {
		extraCol = len(headers)
		headers = append(headers, pickStr(g.rng, []string{"Rank", "Notes", "Source", "Ref", "Status"}))
		colProps = append(colProps, "")
	}

	t := &Table{
		SourceURL: fmt.Sprintf("http://example.org/%s/%d", kb.ClassShortName(class), g.rng.Intn(1<<20)),
		Caption:   g.caption(class, implicitPid, implicitVal),
		Headers:   headers,
		LabelCol:  -1,
		Truth:     &Provenance{Class: class, ColProperty: colProps},
	}
	for ri, e := range rows {
		cells := make([]string, len(headers))
		cells[0] = g.renderLabel(e)
		for ci, p := range props {
			cells[ci+1] = g.renderValue(e, p)
		}
		if extraCol >= 0 {
			cells[extraCol] = g.renderExtra(extraCol, ri)
		}
		t.Cells = append(t.Cells, cells)
		t.Truth.RowEntity = append(t.Truth.RowEntity, e.UID)
	}
	return t
}

func indexOfProp(schema []kb.Property, pid kb.PropertyID) int {
	for i, p := range schema {
		if p.ID == pid {
			return i
		}
	}
	return 0
}

// sampleEntities draws n distinct entities, mixing popularity weighting
// with uniform sampling so both head and tail entities recur.
func (g *synthesizer) sampleEntities(pool []*world.Entity, n int) []*world.Entity {
	chosen := make(map[int]bool, n)
	out := make([]*world.Entity, 0, n)
	for len(out) < n && len(chosen) < len(pool) {
		var e *world.Entity
		if g.rng.Float64() < 0.5 {
			// Popularity-weighted pick via rejection sampling.
			for tries := 0; tries < 4; tries++ {
				c := pool[g.rng.Intn(len(pool))]
				if g.rng.Float64() < c.Popularity/1000 || tries == 3 {
					e = c
					break
				}
			}
		} else {
			e = pool[g.rng.Intn(len(pool))]
		}
		if chosen[e.UID] {
			continue
		}
		chosen[e.UID] = true
		out = append(out, e)
	}
	return out
}

// renderLabel renders an entity's row label, sometimes using an alias or
// injecting a typo.
func (g *synthesizer) renderLabel(e *world.Entity) string {
	label := e.Name
	if len(e.Aliases) > 0 && g.rng.Float64() < 0.2 {
		label = e.Aliases[g.rng.Intn(len(e.Aliases))]
	}
	if g.rng.Float64() < g.cfg.TypoRate && len(label) > 4 {
		pos := 1 + g.rng.Intn(len(label)-2)
		label = label[:pos] + label[pos+1:] // drop one character
	}
	return label
}

// renderValue renders a property value cell with formatting variety, noise
// and gaps.
func (g *synthesizer) renderValue(e *world.Entity, p kb.Property) string {
	if g.rng.Float64() < g.cfg.EmptyCellRate {
		return ""
	}
	v, ok := e.Truth[p.ID]
	if !ok {
		return ""
	}
	if g.rng.Float64() < g.cfg.WrongValueRate {
		v = g.wrongValue(e, p)
	} else if v.Kind == dtype.Quantity && g.rng.Float64() < g.cfg.OutdatedNumericRate {
		factor := 0.8 + g.rng.Float64()*0.4
		v = dtype.NewQuantity(float64(int(v.Num * factor)))
	}
	return g.format(v, p)
}

// wrongValue replaces a value with another entity's value for the same
// property — a typical web table error.
func (g *synthesizer) wrongValue(e *world.Entity, p kb.Property) dtype.Value {
	pool := g.w.ByClass[e.Class]
	for tries := 0; tries < 8; tries++ {
		other := pool[g.rng.Intn(len(pool))]
		if other.UID != e.UID {
			if v, ok := other.Truth[p.ID]; ok {
				return v
			}
		}
	}
	return e.Truth[p.ID]
}

// format renders a typed value into one of several surface formats.
func (g *synthesizer) format(v dtype.Value, p kb.Property) string {
	switch v.Kind {
	case dtype.Date:
		if v.Gran == dtype.GranYear {
			return fmt.Sprintf("%d", v.Year)
		}
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%04d-%02d-%02d", v.Year, v.Month, v.Day)
		case 1:
			return fmt.Sprintf("%s %d, %d", monthName(v.Month), v.Day, v.Year)
		case 2:
			return fmt.Sprintf("%d/%d/%04d", v.Month, v.Day, v.Year)
		default:
			return fmt.Sprintf("%d", v.Year) // year-only rendering
		}
	case dtype.Quantity:
		switch p.ID {
		case "dbo:runtime":
			secs := int(v.Num)
			if g.rng.Intn(2) == 0 {
				return fmt.Sprintf("%d:%02d", secs/60, secs%60)
			}
			return fmt.Sprintf("%d", secs)
		case "dbo:height":
			in := int(v.Num)
			if g.rng.Intn(2) == 0 {
				return fmt.Sprintf("%d'%d\"", in/12, in%12)
			}
			return fmt.Sprintf("%d", in)
		default:
			n := int(v.Num)
			if n >= 10000 && g.rng.Intn(2) == 0 {
				return withCommas(n)
			}
			return fmt.Sprintf("%g", v.Num)
		}
	case dtype.NominalInteger:
		return fmt.Sprintf("%d", int(v.Num))
	default:
		return v.Raw
	}
}

func (g *synthesizer) renderExtra(col, row int) string {
	switch col % 3 {
	case 0:
		return fmt.Sprintf("%d", row+1)
	case 1:
		return pickStr(g.rng, []string{"ok", "tbd", "n/a", "active", "-"})
	default:
		return pickStr(g.rng, []string{"web", "print", "archive"})
	}
}

// headerFor picks the canonical label, an alternative label, or — with
// CrypticHeaderRate — a generic header that carries no label signal.
func (g *synthesizer) headerFor(p kb.Property) string {
	if g.rng.Float64() < g.cfg.CrypticHeaderRate {
		return pickStr(g.rng, []string{"info", "data", "details", "value",
			"field", "misc", "attr", "c2", "c3", "col4"})
	}
	if len(p.AltLabels) > 0 && g.rng.Float64() < 0.5 {
		return p.AltLabels[g.rng.Intn(len(p.AltLabels))]
	}
	return p.Label
}

func (g *synthesizer) labelHeader(class kb.ClassID) string {
	switch class {
	case kb.ClassGFPlayer:
		return pickStr(g.rng, []string{"Player", "Name", "Player Name"})
	case kb.ClassSong:
		return pickStr(g.rng, []string{"Song", "Title", "Track"})
	default:
		return pickStr(g.rng, []string{"Settlement", "Town", "Place", "Name"})
	}
}

func (g *synthesizer) caption(class kb.ClassID, pid kb.PropertyID, v dtype.Value) string {
	base := kb.ClassShortName(class) + " list"
	if pid != "" {
		return base + " - " + string(pid)[4:] + " " + v.String()
	}
	return base
}

// junkTable produces a table about none of the evaluation classes.
func (g *synthesizer) junkTable() *Table {
	kind := g.rng.Intn(2)
	var t *Table
	if kind == 0 {
		t = &Table{
			Caption: "Product catalog",
			Headers: []string{"Product", "Price", "SKU"},
			Truth:   &Provenance{Class: ""},
		}
		n := 2 + g.rng.Intn(6)
		for i := 0; i < n; i++ {
			t.Cells = append(t.Cells, []string{
				fmt.Sprintf("Widget %c-%d", 'A'+g.rng.Intn(26), g.rng.Intn(100)),
				fmt.Sprintf("%d.99", 5+g.rng.Intn(95)),
				fmt.Sprintf("SKU%06d", g.rng.Intn(999999)),
			})
			t.Truth.RowEntity = append(t.Truth.RowEntity, -1)
		}
	} else {
		t = &Table{
			Caption: "TV schedule",
			Headers: []string{"Time", "Show", "Channel"},
			Truth:   &Provenance{Class: ""},
		}
		n := 2 + g.rng.Intn(6)
		for i := 0; i < n; i++ {
			t.Cells = append(t.Cells, []string{
				fmt.Sprintf("%02d:%02d", g.rng.Intn(24), 15*g.rng.Intn(4)),
				fmt.Sprintf("Show %c%d", 'A'+g.rng.Intn(26), g.rng.Intn(50)),
				fmt.Sprintf("Ch %d", 1+g.rng.Intn(40)),
			})
			t.Truth.RowEntity = append(t.Truth.RowEntity, -1)
		}
	}
	t.Truth.ColProperty = make([]kb.PropertyID, len(t.Headers))
	t.LabelCol = -1
	return t
}

func monthName(m int) string {
	names := []string{"January", "February", "March", "April", "May", "June",
		"July", "August", "September", "October", "November", "December"}
	if m < 1 || m > 12 {
		return "January"
	}
	return names[m-1]
}

func withCommas(n int) string {
	s := fmt.Sprintf("%d", n)
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}

func pickStr(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}
