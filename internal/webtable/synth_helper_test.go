package webtable

import (
	"sync"

	"repro/internal/world"
)

var (
	testWorldOnce sync.Once
	testWorldVal  *world.World
)

// testWorld returns a shared small world for tests in this package.
func testWorld() *world.World {
	testWorldOnce.Do(func() {
		testWorldVal = world.Generate(world.DefaultConfig(0.15))
	})
	return testWorldVal
}
