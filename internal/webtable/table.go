// Package webtable implements the web table substrate: the relational table
// model, a from-scratch HTML table extractor, corpus statistics (Table 3),
// and a synthetic corpus generator that substitutes for the WDC 2012 Web
// Table Corpus used in the paper.
package webtable

import (
	"fmt"
	"sync"

	"repro/internal/dtype"
	"repro/internal/kb"
)

// Table is one relational web table. Headers holds the header row (one
// label per attribute column); Cells holds the body rows, each with exactly
// len(Headers) cells.
//
// The pipeline annotates LabelCol and ColKinds during schema matching.
// Truth carries generation provenance; only the gold standard and the
// evaluation may read it — pipeline components must not.
type Table struct {
	ID        int
	SourceURL string
	Caption   string
	Headers   []string
	Cells     [][]string

	// LabelCol is the index of the label attribute, or -1 before label
	// attribute detection has run.
	LabelCol int
	// ColKinds is the detected coarse data type per column (filled by
	// schema matching).
	ColKinds []dtype.Kind

	// Truth is generation provenance (nil for parsed real tables).
	Truth *Provenance
}

// Provenance records which world entities and KB properties a synthetic
// table was generated from. RowEntity holds one world-entity UID per row
// (-1 for filler rows); ColProperty holds one property ID per column (empty
// for unmappable columns).
type Provenance struct {
	Class       kb.ClassID
	RowEntity   []int
	ColProperty []kb.PropertyID
}

// NumRows returns the number of body rows.
func (t *Table) NumRows() int { return len(t.Cells) }

// NumCols returns the number of attribute columns.
func (t *Table) NumCols() int { return len(t.Headers) }

// Cell returns the raw cell at (row, col), or "" when out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Cells) {
		return ""
	}
	r := t.Cells[row]
	if col < 0 || col >= len(r) {
		return ""
	}
	return r[col]
}

// RowLabel returns the raw label of a row from the detected label column,
// or "" when the label column is unset.
func (t *Table) RowLabel(row int) string {
	if t.LabelCol < 0 {
		return ""
	}
	return t.Cell(row, t.LabelCol)
}

// Validate checks structural invariants: at least two columns (a label and
// one value attribute), at least one row, and rectangular cells.
func (t *Table) Validate() error {
	if len(t.Headers) < 2 {
		return fmt.Errorf("webtable: table %d has %d columns, need at least 2", t.ID, len(t.Headers))
	}
	if len(t.Cells) == 0 {
		return fmt.Errorf("webtable: table %d has no rows", t.ID)
	}
	for i, r := range t.Cells {
		if len(r) != len(t.Headers) {
			return fmt.Errorf("webtable: table %d row %d has %d cells, want %d",
				t.ID, i, len(r), len(t.Headers))
		}
	}
	return nil
}

// RowRef addresses a single row of a single table within a corpus. Rows are
// the unit of clustering.
type RowRef struct {
	Table int // table ID
	Row   int // row index within the table
}

// String renders the reference as "t:r".
func (r RowRef) String() string { return fmt.Sprintf("%d:%d", r.Table, r.Row) }

// Corpus is a collection of web tables with ID-based lookup.
//
// The method surface (Append, Truncate, Table, Len, TotalRows, Rows,
// Stats) is safe for concurrent use: the serve layer's per-class writer
// goroutines append uploaded tables while other classes' engines read
// their own batches. Individual tables are immutable once appended (the
// pipeline annotates only tables it is currently ingesting, and each
// table belongs to exactly one class's batch), so the guard covers the
// table list itself, not table contents. Direct access to the Tables
// field is construction-time only and must not overlap with method
// calls from other goroutines.
type Corpus struct {
	mu     sync.RWMutex
	Tables []*Table
}

// NewCorpus wraps tables into a corpus, assigning sequential IDs. Tables
// whose label column is unknown should carry LabelCol -1 (the zero value 0
// is a valid column index and is preserved, e.g. for WDC key columns);
// pipeline components run label-attribute detection only on tables with
// LabelCol < 0.
func NewCorpus(tables []*Table) *Corpus {
	for i, t := range tables {
		t.ID = i
	}
	return &Corpus{Tables: tables}
}

// Append adds a table to the corpus, assigning it the next sequential ID,
// and returns that ID. Safe for concurrent use with the other corpus
// methods; the serve layer's per-class writers append uploaded tables
// while other classes' engines look up their own.
func (c *Corpus) Append(t *Table) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	t.ID = len(c.Tables)
	c.Tables = append(c.Tables, t)
	return t.ID
}

// Truncate discards the tables with IDs at or beyond n. The serve layer
// uses it to roll back an appended upload whose ingest panicked before
// the engine could absorb it.
func (c *Corpus) Truncate(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n >= 0 && n < len(c.Tables) {
		c.Tables = c.Tables[:n]
	}
}

// TruncateIf truncates to n only when the corpus currently holds exactly
// expect tables, and reports whether it did. The check and the truncation
// are one atomic step, so a caller rolling back its own appended tail is
// guaranteed not to chop tables another goroutine appended after it.
func (c *Corpus) TruncateIf(n, expect int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.Tables) != expect || n < 0 || n > expect {
		return false
	}
	c.Tables = c.Tables[:n]
	return true
}

// Table returns the table with the given ID, or nil. Tables are immutable
// once appended, so the returned pointer is safe to use while other
// goroutines append.
func (c *Corpus) Table(id int) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if id < 0 || id >= len(c.Tables) {
		return nil
	}
	return c.Tables[id]
}

// Len returns the number of tables.
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.Tables)
}

// TotalRows returns the total number of body rows across all tables.
func (c *Corpus) TotalRows() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, t := range c.Tables {
		n += t.NumRows()
	}
	return n
}

// Rows enumerates all row references in the corpus.
func (c *Corpus) Rows() []RowRef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := 0
	for _, t := range c.Tables {
		out += t.NumRows()
	}
	refs := make([]RowRef, 0, out)
	for _, t := range c.Tables {
		for r := range t.Cells {
			refs = append(refs, RowRef{Table: t.ID, Row: r})
		}
	}
	return refs
}
