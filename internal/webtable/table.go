// Package webtable implements the web table substrate: the relational table
// model, a from-scratch HTML table extractor, corpus statistics (Table 3),
// and a synthetic corpus generator that substitutes for the WDC 2012 Web
// Table Corpus used in the paper.
package webtable

import (
	"fmt"

	"repro/internal/dtype"
	"repro/internal/kb"
)

// Table is one relational web table. Headers holds the header row (one
// label per attribute column); Cells holds the body rows, each with exactly
// len(Headers) cells.
//
// The pipeline annotates LabelCol and ColKinds during schema matching.
// Truth carries generation provenance; only the gold standard and the
// evaluation may read it — pipeline components must not.
type Table struct {
	ID        int
	SourceURL string
	Caption   string
	Headers   []string
	Cells     [][]string

	// LabelCol is the index of the label attribute, or -1 before label
	// attribute detection has run.
	LabelCol int
	// ColKinds is the detected coarse data type per column (filled by
	// schema matching).
	ColKinds []dtype.Kind

	// Truth is generation provenance (nil for parsed real tables).
	Truth *Provenance
}

// Provenance records which world entities and KB properties a synthetic
// table was generated from. RowEntity holds one world-entity UID per row
// (-1 for filler rows); ColProperty holds one property ID per column (empty
// for unmappable columns).
type Provenance struct {
	Class       kb.ClassID
	RowEntity   []int
	ColProperty []kb.PropertyID
}

// NumRows returns the number of body rows.
func (t *Table) NumRows() int { return len(t.Cells) }

// NumCols returns the number of attribute columns.
func (t *Table) NumCols() int { return len(t.Headers) }

// Cell returns the raw cell at (row, col), or "" when out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Cells) {
		return ""
	}
	r := t.Cells[row]
	if col < 0 || col >= len(r) {
		return ""
	}
	return r[col]
}

// RowLabel returns the raw label of a row from the detected label column,
// or "" when the label column is unset.
func (t *Table) RowLabel(row int) string {
	if t.LabelCol < 0 {
		return ""
	}
	return t.Cell(row, t.LabelCol)
}

// Validate checks structural invariants: at least two columns (a label and
// one value attribute), at least one row, and rectangular cells.
func (t *Table) Validate() error {
	if len(t.Headers) < 2 {
		return fmt.Errorf("webtable: table %d has %d columns, need at least 2", t.ID, len(t.Headers))
	}
	if len(t.Cells) == 0 {
		return fmt.Errorf("webtable: table %d has no rows", t.ID)
	}
	for i, r := range t.Cells {
		if len(r) != len(t.Headers) {
			return fmt.Errorf("webtable: table %d row %d has %d cells, want %d",
				t.ID, i, len(r), len(t.Headers))
		}
	}
	return nil
}

// RowRef addresses a single row of a single table within a corpus. Rows are
// the unit of clustering.
type RowRef struct {
	Table int // table ID
	Row   int // row index within the table
}

// String renders the reference as "t:r".
func (r RowRef) String() string { return fmt.Sprintf("%d:%d", r.Table, r.Row) }

// Corpus is a collection of web tables with ID-based lookup.
type Corpus struct {
	Tables []*Table
}

// NewCorpus wraps tables into a corpus, assigning sequential IDs. Tables
// whose label column is unknown should carry LabelCol -1 (the zero value 0
// is a valid column index and is preserved, e.g. for WDC key columns);
// pipeline components run label-attribute detection only on tables with
// LabelCol < 0.
func NewCorpus(tables []*Table) *Corpus {
	for i, t := range tables {
		t.ID = i
	}
	return &Corpus{Tables: tables}
}

// Append adds a table to the corpus, assigning it the next sequential ID,
// and returns that ID. Append is not safe for concurrent use with readers
// of the corpus: the serve layer calls it only from its single-writer
// ingest loop, immediately before handing the new ID to the engine.
func (c *Corpus) Append(t *Table) int {
	t.ID = len(c.Tables)
	c.Tables = append(c.Tables, t)
	return t.ID
}

// Table returns the table with the given ID, or nil.
func (c *Corpus) Table(id int) *Table {
	if id < 0 || id >= len(c.Tables) {
		return nil
	}
	return c.Tables[id]
}

// Len returns the number of tables.
func (c *Corpus) Len() int { return len(c.Tables) }

// TotalRows returns the total number of body rows across all tables.
func (c *Corpus) TotalRows() int {
	n := 0
	for _, t := range c.Tables {
		n += t.NumRows()
	}
	return n
}

// Rows enumerates all row references in the corpus.
func (c *Corpus) Rows() []RowRef {
	out := make([]RowRef, 0, c.TotalRows())
	for _, t := range c.Tables {
		for r := range t.Cells {
			out = append(out, RowRef{Table: t.ID, Row: r})
		}
	}
	return out
}
