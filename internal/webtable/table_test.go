package webtable

import (
	"testing"

	"repro/internal/kb"
)

func TestTableValidate(t *testing.T) {
	good := &Table{
		Headers: []string{"Name", "Pos"},
		Cells:   [][]string{{"Tom Brady", "QB"}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid table: %v", err)
	}
	oneCol := &Table{Headers: []string{"Name"}, Cells: [][]string{{"x"}}}
	if err := oneCol.Validate(); err == nil {
		t.Error("single-column table should fail validation")
	}
	empty := &Table{Headers: []string{"A", "B"}}
	if err := empty.Validate(); err == nil {
		t.Error("rowless table should fail validation")
	}
	ragged := &Table{
		Headers: []string{"A", "B"},
		Cells:   [][]string{{"1", "2"}, {"only one"}},
	}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged table should fail validation")
	}
}

func TestTableAccessors(t *testing.T) {
	tb := &Table{
		Headers:  []string{"Name", "Pos"},
		Cells:    [][]string{{"Tom Brady", "QB"}, {"Joe Cool", "WR"}},
		LabelCol: 0,
	}
	if tb.NumRows() != 2 || tb.NumCols() != 2 {
		t.Error("dims")
	}
	if tb.Cell(0, 1) != "QB" {
		t.Error("Cell")
	}
	if tb.Cell(5, 0) != "" || tb.Cell(0, 5) != "" || tb.Cell(-1, -1) != "" {
		t.Error("out-of-range cells should be empty")
	}
	if tb.RowLabel(1) != "Joe Cool" {
		t.Error("RowLabel")
	}
	tb.LabelCol = -1
	if tb.RowLabel(0) != "" {
		t.Error("unset label column should yield empty label")
	}
}

func TestCorpus(t *testing.T) {
	c := NewCorpus([]*Table{
		{Headers: []string{"A", "B"}, Cells: [][]string{{"1", "2"}}},
		{Headers: []string{"A", "B"}, Cells: [][]string{{"1", "2"}, {"3", "4"}}},
	})
	if c.Len() != 2 || c.TotalRows() != 3 {
		t.Fatalf("Len=%d TotalRows=%d", c.Len(), c.TotalRows())
	}
	if c.Table(0).ID != 0 || c.Table(1).ID != 1 {
		t.Error("IDs should be sequential")
	}
	if c.Table(-1) != nil || c.Table(9) != nil {
		t.Error("out-of-range table lookup")
	}
	rows := c.Rows()
	if len(rows) != 3 {
		t.Fatalf("Rows = %v", rows)
	}
	if rows[2] != (RowRef{Table: 1, Row: 1}) {
		t.Errorf("rows[2] = %v", rows[2])
	}
	if rows[2].String() != "1:1" {
		t.Errorf("RowRef string = %q", rows[2].String())
	}
}

func TestCorpusStats(t *testing.T) {
	c := NewCorpus([]*Table{
		{Headers: []string{"A", "B"}, Cells: make([][]string, 2)},
		{Headers: []string{"A", "B", "C"}, Cells: make([][]string, 4)},
		{Headers: []string{"A", "B"}, Cells: make([][]string, 9)},
	})
	s := c.Stats()
	if s.Tables != 3 || s.Rows != 15 {
		t.Fatalf("stats = %+v", s)
	}
	if s.RowsMedian != 4 || s.RowsMin != 2 || s.RowsMax != 9 {
		t.Errorf("row stats = %+v", s)
	}
	if s.ColsMedian != 2 || s.ColsMax != 3 {
		t.Errorf("col stats = %+v", s)
	}
	if s.RowsAvg != 5 {
		t.Errorf("RowsAvg = %v", s.RowsAvg)
	}
	var empty Corpus
	if st := empty.Stats(); st.Tables != 0 {
		t.Error("empty corpus stats should be zero")
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]int{1, 3}); m != 2 {
		t.Errorf("median even = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median nil = %v", m)
	}
}

func TestProvenanceOnSyntheticTables(t *testing.T) {
	w := testWorld()
	c := Synthesize(w, DefaultSynthConfig(0.05))
	for _, tb := range c.Tables {
		if tb.Truth == nil {
			t.Fatal("synthetic tables must carry provenance")
		}
		if len(tb.Truth.RowEntity) != tb.NumRows() {
			t.Fatalf("table %d: %d row entities for %d rows",
				tb.ID, len(tb.Truth.RowEntity), tb.NumRows())
		}
		if len(tb.Truth.ColProperty) != tb.NumCols() {
			t.Fatalf("table %d: %d col properties for %d cols",
				tb.ID, len(tb.Truth.ColProperty), tb.NumCols())
		}
	}
}

func TestSynthesizedCorpusShape(t *testing.T) {
	w := testWorld()
	cfg := DefaultSynthConfig(0.1)
	c := Synthesize(w, cfg)
	if c.Len() == 0 {
		t.Fatal("empty corpus")
	}
	// Every class contributes tables and junk tables exist.
	byClass := map[kb.ClassID]int{}
	for _, tb := range c.Tables {
		byClass[tb.Truth.Class]++
		if err := tb.Validate(); err != nil {
			t.Fatalf("invalid synthetic table: %v", err)
		}
	}
	for _, class := range kb.EvalClasses() {
		if byClass[class] == 0 {
			t.Errorf("no tables for %s", class)
		}
	}
	if byClass[""] == 0 {
		t.Error("no junk tables")
	}
	// Song should dominate, as in Table 4.
	if byClass[kb.ClassSong] <= byClass[kb.ClassGFPlayer] {
		t.Errorf("song tables (%d) should outnumber player tables (%d)",
			byClass[kb.ClassSong], byClass[kb.ClassGFPlayer])
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	w := testWorld()
	cfg := DefaultSynthConfig(0.05)
	a := Synthesize(w, cfg)
	b := Synthesize(w, cfg)
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic corpus size: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Tables {
		ta, tb := a.Tables[i], b.Tables[i]
		if ta.Caption != tb.Caption || ta.NumRows() != tb.NumRows() {
			t.Fatalf("table %d differs between runs", i)
		}
	}
}

func TestImplicitTablesShareHiddenValue(t *testing.T) {
	w := testWorld()
	cfg := DefaultSynthConfig(0.2)
	cfg.ImplicitTableRate = 1.0
	c := Synthesize(w, cfg)
	found := 0
	for _, tb := range c.Tables {
		if tb.Truth.Class != kb.ClassGFPlayer {
			continue
		}
		// With rate 1.0 most player tables should have pool >= 2 sharing
		// an implicit property; check rows really share that value.
		if tb.NumRows() < 2 {
			continue
		}
		found++
	}
	if found == 0 {
		t.Error("expected implicit player tables")
	}
}

func BenchmarkSynthesize(b *testing.B) {
	w := testWorld()
	cfg := DefaultSynthConfig(0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Synthesize(w, cfg)
	}
}
