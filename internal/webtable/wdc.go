package webtable

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// wdcTable mirrors the JSON schema of the Web Data Commons web table
// corpus: column-major relation, header row index, key (label) column
// index, plus page metadata. Reading and writing this format lets the
// pipeline consume real WDC dumps in place of the synthetic corpus.
type wdcTable struct {
	Relation       [][]string `json:"relation"`
	PageTitle      string     `json:"pageTitle"`
	Title          string     `json:"title"`
	URL            string     `json:"url"`
	HasHeader      bool       `json:"hasHeader"`
	HeaderRowIndex int        `json:"headerRowIndex"`
	KeyColumnIndex int        `json:"keyColumnIndex"`
	TableType      string     `json:"tableType"`
}

// ReadWDC parses a stream of newline-delimited WDC JSON tables into a
// corpus. Tables that are not relational (tableType other than "RELATION"
// when set), have no header, or fail structural validation are skipped.
// The WDC key column, when present, seeds the label attribute.
func ReadWDC(r io.Reader) (*Corpus, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var tables []*Table
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var wt wdcTable
		if err := json.Unmarshal(raw, &wt); err != nil {
			return nil, fmt.Errorf("webtable: WDC line %d: %w", line, err)
		}
		if t := wt.toTable(); t != nil {
			tables = append(tables, t)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("webtable: reading WDC stream: %w", err)
	}
	return NewCorpus(tables), nil
}

// toTable converts the column-major WDC relation into a Table, or nil when
// the table is not usable.
func (wt *wdcTable) toTable() *Table {
	if wt.TableType != "" && wt.TableType != "RELATION" {
		return nil
	}
	if !wt.HasHeader && wt.HeaderRowIndex < 0 {
		return nil
	}
	nCols := len(wt.Relation)
	if nCols < 2 {
		return nil
	}
	nRows := len(wt.Relation[0])
	for _, col := range wt.Relation {
		if len(col) != nRows {
			return nil // ragged relation
		}
	}
	hdr := wt.HeaderRowIndex
	if hdr < 0 || hdr >= nRows {
		hdr = 0
	}
	headers := make([]string, nCols)
	for c, col := range wt.Relation {
		headers[c] = col[hdr]
	}
	t := &Table{
		SourceURL: wt.URL,
		Caption:   firstNonEmpty(wt.Title, wt.PageTitle),
		Headers:   headers,
		LabelCol:  -1,
	}
	for r := 0; r < nRows; r++ {
		if r == hdr {
			continue
		}
		row := make([]string, nCols)
		for c := 0; c < nCols; c++ {
			row[c] = wt.Relation[c][r]
		}
		t.Cells = append(t.Cells, row)
	}
	if err := t.Validate(); err != nil {
		return nil
	}
	if wt.KeyColumnIndex >= 0 && wt.KeyColumnIndex < nCols {
		t.LabelCol = wt.KeyColumnIndex
	}
	return t
}

// WriteWDC serializes a corpus as newline-delimited WDC JSON tables.
func WriteWDC(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range c.Tables {
		nCols := t.NumCols()
		relation := make([][]string, nCols)
		for col := 0; col < nCols; col++ {
			relation[col] = make([]string, 0, t.NumRows()+1)
			relation[col] = append(relation[col], t.Headers[col])
			for r := 0; r < t.NumRows(); r++ {
				relation[col] = append(relation[col], t.Cell(r, col))
			}
		}
		key := t.LabelCol
		wt := wdcTable{
			Relation:       relation,
			Title:          t.Caption,
			URL:            t.SourceURL,
			HasHeader:      true,
			HeaderRowIndex: 0,
			KeyColumnIndex: key,
			TableType:      "RELATION",
		}
		if err := enc.Encode(&wt); err != nil {
			return fmt.Errorf("webtable: writing WDC table %d: %w", t.ID, err)
		}
	}
	return bw.Flush()
}

func firstNonEmpty(ss ...string) string {
	for _, s := range ss {
		if s != "" {
			return s
		}
	}
	return ""
}
