package webtable

import (
	"bytes"
	"strings"
	"testing"
)

const wdcSample = `{"relation":[["Player","Tom Brady","Joe Cool"],["Pos","QB","WR"]],"title":"Roster","url":"http://x.org","hasHeader":true,"headerRowIndex":0,"keyColumnIndex":0,"tableType":"RELATION"}
{"relation":[["A","1"],["B","2"]],"hasHeader":true,"headerRowIndex":0,"keyColumnIndex":-1,"tableType":"OTHER"}
{"relation":[["OnlyOneColumn","x","y"]],"hasHeader":true,"headerRowIndex":0,"keyColumnIndex":0,"tableType":"RELATION"}
`

func TestReadWDC(t *testing.T) {
	c, err := ReadWDC(strings.NewReader(wdcSample))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("read %d tables, want 1 (non-relation and 1-col skipped)", c.Len())
	}
	tb := c.Table(0)
	if tb.Caption != "Roster" || tb.SourceURL != "http://x.org" {
		t.Errorf("metadata = %q / %q", tb.Caption, tb.SourceURL)
	}
	if tb.NumRows() != 2 || tb.NumCols() != 2 {
		t.Fatalf("dims = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if tb.Headers[1] != "Pos" || tb.Cell(0, 0) != "Tom Brady" || tb.Cell(1, 1) != "WR" {
		t.Errorf("content: %v / %v", tb.Headers, tb.Cells)
	}
	if tb.LabelCol != 0 {
		t.Errorf("key column = %d, want 0", tb.LabelCol)
	}
}

func TestReadWDCRagged(t *testing.T) {
	ragged := `{"relation":[["A","1","2"],["B","x"]],"hasHeader":true,"headerRowIndex":0,"tableType":"RELATION"}`
	c, err := ReadWDC(strings.NewReader(ragged))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Error("ragged relation should be skipped")
	}
}

func TestReadWDCBadJSON(t *testing.T) {
	if _, err := ReadWDC(strings.NewReader("{not json}")); err == nil {
		t.Error("want error on malformed JSON")
	}
}

func TestReadWDCEmptyLines(t *testing.T) {
	c, err := ReadWDC(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Error("blank input should yield empty corpus")
	}
}

func TestWDCRoundTrip(t *testing.T) {
	orig := NewCorpus([]*Table{
		{
			Caption:   "Roster",
			SourceURL: "http://x.org/1",
			Headers:   []string{"Player", "Pos", "Weight"},
			Cells: [][]string{
				{"Tom Brady", "QB", "225"},
				{"Joe Cool", "WR", "190"},
			},
			LabelCol: 0,
		},
		{
			Caption:  "Towns",
			Headers:  []string{"Town", "Population"},
			Cells:    [][]string{{"Springfield", "30,000"}},
			LabelCol: 0,
		},
	})
	var buf bytes.Buffer
	if err := WriteWDC(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWDC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("round trip length %d != %d", got.Len(), orig.Len())
	}
	for i := range orig.Tables {
		a, b := orig.Tables[i], got.Tables[i]
		if a.Caption != b.Caption || a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
			t.Fatalf("table %d mismatch: %+v vs %+v", i, a, b)
		}
		for r := 0; r < a.NumRows(); r++ {
			for c := 0; c < a.NumCols(); c++ {
				if a.Cell(r, c) != b.Cell(r, c) {
					t.Fatalf("cell (%d,%d) %q != %q", r, c, a.Cell(r, c), b.Cell(r, c))
				}
			}
		}
		if a.LabelCol != b.LabelCol {
			t.Errorf("label col %d != %d", a.LabelCol, b.LabelCol)
		}
	}
}

func TestWDCHeaderRowNotFirst(t *testing.T) {
	in := `{"relation":[["x","Player","Tom"],["y","Pos","QB"]],"hasHeader":true,"headerRowIndex":1,"keyColumnIndex":0,"tableType":"RELATION"}`
	c, err := ReadWDC(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("tables = %d", c.Len())
	}
	tb := c.Table(0)
	if tb.Headers[0] != "Player" {
		t.Errorf("headers = %v", tb.Headers)
	}
	if tb.NumRows() != 2 { // rows above and below the header remain
		t.Errorf("rows = %d", tb.NumRows())
	}
}

func BenchmarkReadWDC(b *testing.B) {
	w := testWorld()
	c := Synthesize(w, DefaultSynthConfig(0.1))
	var buf bytes.Buffer
	if err := WriteWDC(&buf, c); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadWDC(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
