package world

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dtype"
	"repro/internal/kb"
)

// nameGen produces class-specific names and complete truth fact sets.
type nameGen struct {
	class kb.ClassID
	rng   *rand.Rand
	used  map[string]int
}

func newNameGen(class kb.ClassID, rng *rand.Rand) *nameGen {
	return &nameGen{class: class, rng: rng, used: make(map[string]int)}
}

// Shared vocabulary pools. They are intentionally modest in size so that
// *some* accidental name collisions occur on top of the intentional homonym
// groups — real web table corpora have both.
var (
	firstNames = []string{
		"James", "Michael", "Robert", "John", "David", "William", "Richard",
		"Joseph", "Thomas", "Chris", "Charles", "Daniel", "Matthew", "Anthony",
		"Mark", "Donald", "Steven", "Paul", "Andrew", "Joshua", "Kenneth",
		"Kevin", "Brian", "George", "Tim", "Ronald", "Edward", "Jason",
		"Jeff", "Ryan", "Jacob", "Gary", "Nick", "Eric", "Jonathan",
		"Stephen", "Larry", "Justin", "Scott", "Brandon", "Ben", "Frank",
		"Greg", "Sam", "Ray", "Pat", "Alex", "Jack", "Dennis", "Jerry",
		"Tyler", "Aaron", "Jose", "Adam", "Nathan", "Henry", "Doug", "Zach",
		"Peter", "Kyle", "Walter", "Ethan", "Jeremy", "Harold", "Keith",
		"Christian", "Roger", "Noah", "Gerald", "Carl", "Terry", "Sean",
		"Austin", "Arthur", "Lawrence", "Jesse", "Dylan", "Bryan", "Joe",
		"Jordan", "Billy", "Bruce", "Albert", "Willie", "Gabriel", "Logan",
		"Alan", "Juan", "Wayne", "Roy", "Ralph", "Randy", "Eugene", "Vincent",
		"Russell", "Elijah", "Louis", "Bobby", "Philip", "Johnny",
	}
	lastNames = []string{
		"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
		"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
		"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
		"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
		"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
		"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
		"Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
		"Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
		"Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
		"Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
		"Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
		"Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
		"Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
		"Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
		"Ross", "Foster", "Jimenez",
	}
	songAdjectives = []string{
		"Lonely", "Endless", "Golden", "Broken", "Silent", "Midnight",
		"Electric", "Crazy", "Sweet", "Wild", "Blue", "Burning", "Fading",
		"Hollow", "Restless", "Shining", "Dancing", "Frozen", "Velvet",
		"Crimson", "Distant", "Gentle", "Savage", "Neon", "Paper",
	}
	songNouns = []string{
		"Heart", "Night", "Dream", "Road", "Fire", "Rain", "Love", "Light",
		"River", "Sky", "Summer", "Shadow", "Echo", "Star", "Storm", "Wave",
		"Memory", "Horizon", "Mirror", "Garden", "Whisper", "Flame",
		"Morning", "City", "Ocean",
	}
	placePrefixes = []string{
		"Spring", "Oak", "Maple", "River", "Lake", "Hill", "Green", "Fair",
		"Mill", "Stone", "Pine", "Cedar", "Clear", "Glen", "Ash", "Elm",
		"Birch", "Willow", "North", "South", "East", "West", "New", "Old",
		"Brook", "Wood", "High", "Long", "Red", "White",
	}
	placeSuffixes = []string{
		"field", "ville", "ton", "burg", "wood", "dale", "port", "ford",
		"haven", "brook", "mont", "view", "side", "crest", "ridge", "creek",
	}
	colleges = []string{
		"Alabama", "Ohio State", "Michigan", "Notre Dame", "USC", "Texas",
		"Oklahoma", "Georgia", "LSU", "Florida", "Penn State", "Nebraska",
		"Miami", "Clemson", "Auburn", "Tennessee", "Wisconsin", "Oregon",
		"Iowa", "Stanford", "UCLA", "Washington", "Texas A&M", "Florida State",
		"Boise State", "Fresno State", "Toledo", "Akron", "Ball State",
		"Eastern Michigan",
	}
	nflTeams = []string{
		"Patriots", "Packers", "Steelers", "Cowboys", "49ers", "Giants",
		"Eagles", "Bears", "Broncos", "Raiders", "Dolphins", "Jets", "Bills",
		"Chiefs", "Colts", "Titans", "Jaguars", "Texans", "Ravens", "Bengals",
		"Browns", "Chargers", "Rams", "Seahawks", "Cardinals", "Falcons",
		"Panthers", "Saints", "Buccaneers", "Vikings", "Lions", "Commanders",
	}
	positions = []string{"QB", "RB", "WR", "TE", "OT", "OG", "C", "DE", "DT",
		"LB", "CB", "S", "K", "P"}
	genres = []string{
		"Rock", "Pop", "Country", "Hip hop", "R&B", "Jazz", "Blues", "Folk",
		"Electronic", "Soul", "Punk", "Metal", "Reggae", "Disco", "Indie",
	}
	recordLabels = []string{
		"Columbia", "Atlantic", "Capitol", "RCA", "Mercury", "Epic",
		"Island", "Motown", "Elektra", "Geffen", "Interscope", "Def Jam",
		"Sub Pop", "Rough Trade", "Stax",
	}
	artistSuffixes = []string{
		"Band", "Trio", "Experience", "Project", "Orchestra", "Quartet",
		"Collective", "Brothers", "Sisters", "Gang",
	}
	countries = []string{
		"United States", "Germany", "France", "United Kingdom", "Italy",
		"Spain", "Poland", "Romania", "Netherlands", "Belgium", "Greece",
		"Portugal", "Czech Republic", "Hungary", "Sweden", "Austria",
		"Switzerland", "Bulgaria", "Denmark", "Finland", "Slovakia", "Norway",
		"Ireland", "Croatia",
	}
	regions = []string{
		"Northern District", "Southern District", "Eastern Province",
		"Western Province", "Central County", "Lake County", "Hill County",
		"Coastal Region", "Valley District", "Upper County", "Lower County",
		"Midland District", "Border Province", "Highland Region",
		"Riverside County", "Greenfield County",
	}
)

// name produces a fresh class-appropriate name. Collisions with previously
// issued names are avoided by appending a disambiguating middle token —
// except that a small collision rate is intentionally left in for songs.
func (g *nameGen) name() string {
	for attempt := 0; ; attempt++ {
		var n string
		switch g.class {
		case kb.ClassGFPlayer:
			n = pick(g.rng, firstNames) + " " + pick(g.rng, lastNames)
		case kb.ClassSong:
			n = pick(g.rng, songAdjectives) + " " + pick(g.rng, songNouns)
		default: // Settlement
			n = pick(g.rng, placePrefixes) + pick(g.rng, placeSuffixes)
		}
		if g.used[n] == 0 || attempt > 6 {
			g.used[n]++
			return n
		}
		if g.class == kb.ClassSong && g.rng.Float64() < 0.1 {
			// Accidental homonym: reuse the title anyway.
			g.used[n]++
			return n
		}
	}
}

// alias sometimes produces an alternative surface form of a name.
func (g *nameGen) alias(name string) string {
	if g.rng.Float64() > 0.25 {
		return ""
	}
	switch g.class {
	case kb.ClassGFPlayer:
		parts := strings.Fields(name)
		if len(parts) == 2 {
			return parts[0][:1] + ". " + parts[1]
		}
	case kb.ClassSong:
		return "The " + name
	default:
		return name + " Town"
	}
	return ""
}

// truth generates a complete fact set for the class.
func (g *nameGen) truth() map[kb.PropertyID]dtype.Value {
	switch g.class {
	case kb.ClassGFPlayer:
		return g.playerTruth()
	case kb.ClassSong:
		return g.songTruth()
	default:
		return g.settlementTruth()
	}
}

func (g *nameGen) playerTruth() map[kb.PropertyID]dtype.Value {
	year := 1960 + g.rng.Intn(40)
	draftYear := year + 21 + g.rng.Intn(3)
	return map[kb.PropertyID]dtype.Value{
		"dbo:birthDate":  dtype.NewDate(year, 1+g.rng.Intn(12), 1+g.rng.Intn(28)),
		"dbo:college":    dtype.NewRef(pick(g.rng, colleges)),
		"dbo:birthPlace": dtype.NewRef(pick(g.rng, placePrefixes) + pick(g.rng, placeSuffixes)),
		"dbo:team":       dtype.NewRef(pick(g.rng, nflTeams)),
		"dbo:number":     dtype.NewNominalInt(1 + g.rng.Intn(99)),
		"dbo:position":   dtype.NewNominal(pick(g.rng, positions)),
		"dbo:height":     dtype.NewQuantity(float64(68 + g.rng.Intn(12))), // inches
		"dbo:weight":     dtype.NewQuantity(float64(180 + g.rng.Intn(140))),
		"dbo:draftYear":  dtype.NewYear(draftYear),
		"dbo:draftRound": dtype.NewNominalInt(1 + g.rng.Intn(7)),
		"dbo:draftPick":  dtype.NewNominalInt(1 + g.rng.Intn(256)),
	}
}

func (g *nameGen) songTruth() map[kb.PropertyID]dtype.Value {
	artist := g.artistName()
	return map[kb.PropertyID]dtype.Value{
		"dbo:genre":         dtype.NewNominal(pick(g.rng, genres)),
		"dbo:musicalArtist": dtype.NewRef(artist),
		"dbo:recordLabel":   dtype.NewRef(pick(g.rng, recordLabels) + " Records"),
		"dbo:runtime":       dtype.NewQuantity(float64(120 + g.rng.Intn(300))), // seconds
		"dbo:album":         dtype.NewRef(pick(g.rng, songAdjectives) + " " + pick(g.rng, songNouns) + " LP"),
		"dbo:writer":        dtype.NewRef(pick(g.rng, firstNames) + " " + pick(g.rng, lastNames)),
		"dbo:releaseDate":   dtype.NewDate(1955+g.rng.Intn(58), 1+g.rng.Intn(12), 1+g.rng.Intn(28)),
	}
}

func (g *nameGen) artistName() string {
	if g.rng.Float64() < 0.4 {
		return "The " + pick(g.rng, lastNames) + " " + pick(g.rng, artistSuffixes)
	}
	return pick(g.rng, firstNames) + " " + pick(g.rng, lastNames)
}

func (g *nameGen) settlementTruth() map[kb.PropertyID]dtype.Value {
	return map[kb.PropertyID]dtype.Value{
		"dbo:country":         dtype.NewRef(pick(g.rng, countries)),
		"dbo:isPartOf":        dtype.NewRef(pick(g.rng, regions)),
		"dbo:populationTotal": dtype.NewQuantity(float64(100 + g.rng.Intn(200000))),
		"dbo:postalCode":      dtype.NewNominal(fmt.Sprintf("%05d", 10000+g.rng.Intn(89999))),
		"dbo:elevation":       dtype.NewQuantity(float64(g.rng.Intn(2500))),
	}
}

func pick(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}
