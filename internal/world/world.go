// Package world generates the deterministic synthetic universe that
// substitutes for the paper's real-world data: the entities that exist "in
// the world" — some of which are covered by the knowledge base (head) and
// some of which are long-tail entities only the web tables describe.
//
// The same world drives three substitutes:
//
//   - the synthetic DBpedia (kb.KB) — head entities, facts sampled to match
//     the paper's per-property densities (Table 2);
//   - the synthetic web table corpus (webtable.Synthesize) — tables drawn
//     over head and tail entities with realistic noise;
//   - the gold standard (gold.FromWorld) — ground truth is known because
//     every generated row records which world entity it describes.
//
// Everything is seeded, so runs are reproducible.
package world

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dtype"
	"repro/internal/kb"
)

// Entity is one entity of the synthetic world with its complete, true
// description. KB coverage and corpus appearance are decided elsewhere.
type Entity struct {
	// UID is the entity's index in World.Entities.
	UID int
	// Class is the true class of the entity.
	Class kb.ClassID
	// Name is the canonical label; Aliases are alternative surface forms.
	Name    string
	Aliases []string
	// Truth is the complete set of true facts.
	Truth map[kb.PropertyID]dtype.Value
	// InKB reports whether the entity is covered by the knowledge base.
	InKB bool
	// KBID is the instance ID in the KB when InKB.
	KBID kb.InstanceID
	// Popularity follows a Zipf-like distribution; head entities (in the
	// KB) are drawn from the high end.
	Popularity float64
	// HomonymGroup is non-zero when this entity intentionally shares its
	// name with other entities (the paper's homonym problem, worst for
	// songs: same title, different artist, sometimes a cover version with
	// near-identical facts).
	HomonymGroup int
}

// ClassConfig sizes one class of the world.
type ClassConfig struct {
	// KBCount is the number of entities covered by the KB.
	KBCount int
	// NewCount is the number of long-tail entities absent from the KB.
	NewCount int
	// HomonymRate is the fraction of entities placed in homonym groups.
	HomonymRate float64
	// Densities gives the KB fact density per property (Table 2). A
	// property missing from the map gets density 1.
	Densities map[kb.PropertyID]float64
}

// Config sizes the whole world. Classes maps each evaluation class to its
// configuration. Seed makes generation reproducible.
type Config struct {
	Seed    int64
	Classes map[kb.ClassID]ClassConfig
}

// DefaultConfig returns a laptop-scale world whose per-class proportions
// follow the paper: Song has the most long-tail entities (the corpus can
// add +356%), GF-Player a substantial share (+67%), Settlement almost none
// (+1% after accuracy correction); homonyms are most frequent for songs.
// Scale multiplies all counts (1 ≈ hundreds of entities per class).
func DefaultConfig(scale float64) Config {
	s := func(n int) int {
		v := int(math.Round(float64(n) * scale))
		if v < 4 {
			v = 4
		}
		return v
	}
	return Config{
		Seed: 1,
		Classes: map[kb.ClassID]ClassConfig{
			kb.ClassGFPlayer: {
				KBCount: s(210), NewCount: s(140), HomonymRate: 0.06,
				Densities: map[kb.PropertyID]float64{
					"dbo:birthDate": 0.9743, "dbo:college": 0.9292,
					"dbo:birthPlace": 0.8632, "dbo:team": 0.6433,
					"dbo:number": 0.5508, "dbo:position": 0.5417,
					"dbo:height": 0.4847, "dbo:weight": 0.4832,
					"dbo:draftYear": 0.3830, "dbo:draftRound": 0.3822,
					"dbo:draftPick": 0.3819,
				},
			},
			kb.ClassSong: {
				KBCount: s(260), NewCount: s(420), HomonymRate: 0.22,
				Densities: map[kb.PropertyID]float64{
					"dbo:genre": 0.8954, "dbo:musicalArtist": 0.8585,
					"dbo:recordLabel": 0.8195, "dbo:runtime": 0.8002,
					"dbo:album": 0.7741, "dbo:writer": 0.6461,
					"dbo:releaseDate": 0.6034,
				},
			},
			kb.ClassSettlement: {
				KBCount: s(330), NewCount: s(24), HomonymRate: 0.10,
				Densities: map[kb.PropertyID]float64{
					"dbo:country": 0.9251, "dbo:isPartOf": 0.8880,
					"dbo:populationTotal": 0.6244, "dbo:postalCode": 0.3296,
					"dbo:elevation": 0.3126,
				},
			},
		},
	}
}

// World is the generated universe plus the knowledge base built over its
// head entities.
type World struct {
	KB       *kb.KB
	Entities []*Entity
	ByClass  map[kb.ClassID][]*Entity
	// ByKBID maps KB instance IDs back to world entities.
	ByKBID map[kb.InstanceID]*Entity
	rng    *rand.Rand
}

// Generate builds a world from the configuration.
func Generate(cfg Config) *World {
	w := &World{
		KB:      kb.New(),
		ByClass: make(map[kb.ClassID][]*Entity),
		ByKBID:  make(map[kb.InstanceID]*Entity),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, class := range kb.EvalClasses() {
		cc, ok := cfg.Classes[class]
		if !ok {
			continue
		}
		w.generateClass(class, cc)
	}
	// A handful of confusable Place instances so table-to-class matching
	// has realistic near-misses for Settlement.
	w.generateConfusablePlaces()
	return w
}

func (w *World) generateClass(class kb.ClassID, cc ClassConfig) {
	total := cc.KBCount + cc.NewCount
	gen := newNameGen(class, w.rng)
	ents := make([]*Entity, 0, total)
	homonymID := len(w.Entities) + 1
	for i := 0; i < total; i++ {
		e := &Entity{Class: class}
		// Homonym groups: emit a pair (or triple for songs) sharing a
		// name. Group members are adjacent in generation order.
		if w.rng.Float64() < cc.HomonymRate && i+1 < total {
			size := 2
			if class == kb.ClassSong && w.rng.Float64() < 0.3 && i+2 < total {
				size = 3
			}
			name := gen.name()
			group := homonymID
			homonymID++
			for j := 0; j < size && i < total; j++ {
				m := &Entity{Class: class, Name: name, HomonymGroup: group}
				w.fillTruth(m, gen)
				if class == kb.ClassSong && j > 0 && w.rng.Float64() < 0.4 {
					// Cover version: copy runtime and writer from the
					// first member so descriptions are highly similar.
					first := ents[len(ents)-j]
					if v, ok := first.Truth["dbo:runtime"]; ok {
						m.Truth["dbo:runtime"] = v
					}
					if v, ok := first.Truth["dbo:writer"]; ok {
						m.Truth["dbo:writer"] = v
					}
				}
				ents = append(ents, m)
				i++
			}
			i--
			continue
		}
		e.Name = gen.name()
		w.fillTruth(e, gen)
		ents = append(ents, e)
	}
	// First KBCount entities become head (popular, covered by the KB);
	// shuffle first so homonym groups straddle the head/tail boundary.
	w.rng.Shuffle(len(ents), func(i, j int) { ents[i], ents[j] = ents[j], ents[i] })
	for i, e := range ents {
		e.UID = len(w.Entities)
		rank := i + 1
		e.Popularity = 1000 / math.Pow(float64(rank), 0.8)
		if i < cc.KBCount {
			e.InKB = true
			w.addToKB(e, cc)
		}
		w.Entities = append(w.Entities, e)
		w.ByClass[class] = append(w.ByClass[class], e)
	}
}

// fillTruth populates the complete fact set of an entity.
func (w *World) fillTruth(e *Entity, gen *nameGen) {
	e.Truth = gen.truth()
	if alias := gen.alias(e.Name); alias != "" {
		e.Aliases = append(e.Aliases, alias)
	}
}

// addToKB creates the KB instance for a head entity, sampling facts by the
// configured per-property density. Properties are visited in sorted order:
// each visit consumes one RNG draw, so iteration order must be fixed for
// generation to be reproducible across processes.
func (w *World) addToKB(e *Entity, cc ClassConfig) {
	pids := make([]kb.PropertyID, 0, len(e.Truth))
	for pid := range e.Truth {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	facts := make(map[kb.PropertyID]dtype.Value)
	for _, pid := range pids {
		density, ok := cc.Densities[pid]
		if !ok {
			density = 1
		}
		if w.rng.Float64() < density {
			facts[pid] = e.Truth[pid]
		}
	}
	labels := append([]string{e.Name}, e.Aliases...)
	e.KBID = w.KB.AddInstance(&kb.Instance{
		Class:      e.Class,
		Labels:     labels,
		Abstract:   abstract(e),
		Facts:      facts,
		Popularity: e.Popularity,
	})
	w.ByKBID[e.KBID] = e
}

// generateConfusablePlaces adds a few Region and Mountain instances whose
// names resemble settlements.
func (w *World) generateConfusablePlaces() {
	gen := newNameGen(kb.ClassSettlement, w.rng)
	for i := 0; i < 12; i++ {
		class := kb.ClassRegion
		suffix := " Region"
		if i%2 == 1 {
			class = kb.ClassMountain
			suffix = " Peak"
		}
		name := gen.name() + suffix
		id := w.KB.AddInstance(&kb.Instance{
			Class:      class,
			Labels:     []string{name},
			Abstract:   "A " + string(class) + " named " + name + ".",
			Facts:      map[kb.PropertyID]dtype.Value{},
			Popularity: 1 + w.rng.Float64()*3,
		})
		e := &Entity{
			UID: len(w.Entities), Class: class, Name: name,
			Truth: map[kb.PropertyID]dtype.Value{}, InKB: true, KBID: id,
		}
		w.ByKBID[id] = e
		w.Entities = append(w.Entities, e)
		w.ByClass[class] = append(w.ByClass[class], e)
	}
}

// NewEntities returns the long-tail entities of a class (those not in the
// KB) — the ground truth for "new" detection.
func (w *World) NewEntities(class kb.ClassID) []*Entity {
	var out []*Entity
	for _, e := range w.ByClass[class] {
		if !e.InKB {
			out = append(out, e)
		}
	}
	return out
}

// HeadEntities returns the KB-covered entities of a class.
func (w *World) HeadEntities(class kb.ClassID) []*Entity {
	var out []*Entity
	for _, e := range w.ByClass[class] {
		if e.InKB {
			out = append(out, e)
		}
	}
	return out
}

func abstract(e *Entity) string {
	pids := make([]kb.PropertyID, 0, len(e.Truth))
	for pid := range e.Truth {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	s := e.Name + " is a " + kb.ClassShortName(e.Class) + "."
	for _, pid := range pids {
		s += " " + string(pid)[4:] + " " + e.Truth[pid].String() + "."
	}
	return s
}

// String summarizes the world.
func (w *World) String() string {
	return fmt.Sprintf("World{entities: %d, kb: %s}", len(w.Entities), w.KB)
}
