package world

import (
	"math"
	"testing"

	"repro/internal/kb"
)

func smallWorld() *World {
	return Generate(DefaultConfig(0.15))
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(0.1))
	b := Generate(DefaultConfig(0.1))
	if len(a.Entities) != len(b.Entities) {
		t.Fatalf("non-deterministic entity counts: %d vs %d", len(a.Entities), len(b.Entities))
	}
	for i := range a.Entities {
		ea, eb := a.Entities[i], b.Entities[i]
		if ea.Name != eb.Name {
			t.Fatalf("entity %d differs: %q vs %q", i, ea.Name, eb.Name)
		}
		if ea.InKB != eb.InKB {
			t.Fatalf("entity %d KB membership differs", i)
		}
	}
	// The sampled KB facts must also be identical — fact sampling consumes
	// RNG draws per property, which once leaked map iteration order into
	// the generated knowledge base.
	if a.KB.NumInstances() != b.KB.NumInstances() {
		t.Fatalf("KB sizes differ: %d vs %d", a.KB.NumInstances(), b.KB.NumInstances())
	}
	for i := 0; i < a.KB.NumInstances(); i++ {
		ia := a.KB.Instance(kb.InstanceID(i))
		ib := b.KB.Instance(kb.InstanceID(i))
		if len(ia.Facts) != len(ib.Facts) {
			t.Fatalf("instance %d fact counts differ: %d vs %d", i, len(ia.Facts), len(ib.Facts))
		}
		for pid := range ia.Facts {
			if _, ok := ib.Facts[pid]; !ok {
				t.Fatalf("instance %d fact %s sampled in one run only", i, pid)
			}
		}
		if ia.Abstract != ib.Abstract {
			t.Fatalf("instance %d abstracts differ", i)
		}
	}
}

func TestClassCounts(t *testing.T) {
	cfg := DefaultConfig(0.2)
	w := Generate(cfg)
	for _, class := range kb.EvalClasses() {
		cc := cfg.Classes[class]
		head := len(w.HeadEntities(class))
		tail := len(w.NewEntities(class))
		if head != cc.KBCount {
			t.Errorf("%s head = %d, want %d", class, head, cc.KBCount)
		}
		if tail != cc.NewCount {
			t.Errorf("%s tail = %d, want %d", class, tail, cc.NewCount)
		}
		if got := len(w.KB.InstancesOf(class)); got != cc.KBCount {
			t.Errorf("%s KB instances = %d, want %d", class, got, cc.KBCount)
		}
	}
}

func TestTruthComplete(t *testing.T) {
	w := smallWorld()
	for _, class := range kb.EvalClasses() {
		schema := w.KB.Schema(class)
		for _, e := range w.ByClass[class] {
			if len(e.Truth) != len(schema) {
				t.Fatalf("%s entity %q truth has %d facts, want %d",
					class, e.Name, len(e.Truth), len(schema))
			}
			for _, p := range schema {
				v, ok := e.Truth[p.ID]
				if !ok {
					t.Fatalf("entity %q missing %s", e.Name, p.ID)
				}
				if v.Kind != p.Kind {
					t.Fatalf("entity %q fact %s kind %v, want %v", e.Name, p.ID, v.Kind, p.Kind)
				}
			}
		}
	}
}

func TestKBDensitiesApproximate(t *testing.T) {
	cfg := DefaultConfig(1.0)
	w := Generate(cfg)
	for _, class := range kb.EvalClasses() {
		want := cfg.Classes[class].Densities
		for _, prof := range w.KB.ProfileProperties(class) {
			target := want[prof.Property]
			if math.Abs(prof.Density-target) > 0.12 {
				t.Errorf("%s %s density = %.3f, want ≈ %.3f",
					class, prof.Property, prof.Density, target)
			}
		}
	}
}

func TestDensityOrderingMatchesPaper(t *testing.T) {
	// The paper's key density facts: Song has consistently high densities
	// (>60%), GF-Player's personal properties are denser than its draft
	// properties, and Settlement's postalCode/elevation are sparse.
	w := Generate(DefaultConfig(1.0))
	songProfs := w.KB.ProfileProperties(kb.ClassSong)
	for _, p := range songProfs {
		if p.Density < 0.5 {
			t.Errorf("song property %s density %.2f — paper has all >0.60", p.Property, p.Density)
		}
	}
	get := func(class kb.ClassID, pid kb.PropertyID) float64 {
		for _, p := range w.KB.ProfileProperties(class) {
			if p.Property == pid {
				return p.Density
			}
		}
		return -1
	}
	if get(kb.ClassGFPlayer, "dbo:birthDate") <= get(kb.ClassGFPlayer, "dbo:draftPick") {
		t.Error("birthDate should be denser than draftPick for players")
	}
	if get(kb.ClassSettlement, "dbo:country") <= get(kb.ClassSettlement, "dbo:elevation") {
		t.Error("country should be denser than elevation for settlements")
	}
}

func TestHomonymGroups(t *testing.T) {
	w := Generate(DefaultConfig(1.0))
	groups := make(map[int][]*Entity)
	for _, e := range w.ByClass[kb.ClassSong] {
		if e.HomonymGroup != 0 {
			groups[e.HomonymGroup] = append(groups[e.HomonymGroup], e)
		}
	}
	if len(groups) == 0 {
		t.Fatal("songs should have homonym groups")
	}
	multi := 0
	for _, g := range groups {
		if len(g) >= 2 {
			multi++
			name := g[0].Name
			for _, e := range g[1:] {
				if e.Name != name {
					t.Errorf("homonym group mixes names %q and %q", name, e.Name)
				}
			}
		}
	}
	if multi == 0 {
		t.Error("no multi-member homonym group found")
	}
}

func TestPopularityHeadVsTail(t *testing.T) {
	w := Generate(DefaultConfig(0.5))
	for _, class := range kb.EvalClasses() {
		var headSum, tailSum float64
		head, tail := w.HeadEntities(class), w.NewEntities(class)
		for _, e := range head {
			headSum += e.Popularity
		}
		for _, e := range tail {
			tailSum += e.Popularity
		}
		if len(head) == 0 || len(tail) == 0 {
			continue
		}
		if headSum/float64(len(head)) <= tailSum/float64(len(tail)) {
			t.Errorf("%s: head entities should be more popular on average", class)
		}
	}
}

func TestByKBIDRoundTrip(t *testing.T) {
	w := smallWorld()
	for _, e := range w.Entities {
		if !e.InKB {
			continue
		}
		got := w.ByKBID[e.KBID]
		if got != e {
			t.Fatalf("ByKBID round trip failed for %q", e.Name)
		}
		in := w.KB.Instance(e.KBID)
		if in == nil || in.Label() != e.Name {
			t.Fatalf("KB instance for %q = %+v", e.Name, in)
		}
	}
}

func TestConfusablePlacesExist(t *testing.T) {
	w := smallWorld()
	if len(w.KB.InstancesOf(kb.ClassRegion)) == 0 {
		t.Error("want Region instances for table-to-class confusion")
	}
	if len(w.KB.InstancesOf(kb.ClassMountain)) == 0 {
		t.Error("want Mountain instances")
	}
}

func TestScaleIsMonotonic(t *testing.T) {
	small := Generate(DefaultConfig(0.1))
	large := Generate(DefaultConfig(0.5))
	if len(large.Entities) <= len(small.Entities) {
		t.Errorf("scale 0.5 (%d entities) should exceed scale 0.1 (%d)",
			len(large.Entities), len(small.Entities))
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultConfig(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
