// Package agg re-exports the score aggregators that combine similarity
// metrics into one decision score: the weighted average and the random
// forest, behind a common interface.
//
// This is a research-surface package with best-effort stability; it is not
// part of the v1 contract (see package ltee).
package agg

import (
	"repro/internal/agg"
)

// Aggregator combines per-metric similarity features into one score.
type Aggregator = agg.Aggregator

// Features is the per-metric feature vector an Aggregator consumes.
type Features = agg.Features

// WeightedAverage is the THRESHOLD-style aggregator: a weighted average of
// the metric scores shifted around a decision threshold.
type WeightedAverage = agg.WeightedAverage

// Combined is the learned aggregator used by the trained pipeline (random
// forest with feature importances).
type Combined = agg.Combined
