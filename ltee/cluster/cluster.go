// Package cluster re-exports the row clustering machinery: prepared rows,
// the similarity metric set, the learned scorer, and the one-shot
// clustering entry point — enough to run clustering studies (see
// examples/songs) on public imports only.
//
// This is a research-surface package with best-effort stability; it is not
// part of the v1 contract (see package ltee).
package cluster

import (
	"repro/internal/cluster"
)

// Row is one prepared table row: its label forms, sparse vectors, typed
// values and blocking keys.
type Row = cluster.Row

// ImplicitAttr is one implicit attribute derived from a table's context.
type ImplicitAttr = cluster.ImplicitAttr

// Clustering is a produced row clustering.
type Clustering = cluster.Clustering

// Options configures a clustering run; NewOptions returns the defaults.
type Options = cluster.Options

// Scorer scores row pairs by aggregating the similarity metrics.
type Scorer = cluster.Scorer

// Metric is one row-pair similarity metric.
type Metric = cluster.Metric

// NewOptions returns the default clustering options: parallel greedy with
// blocking and KLj refinement.
func NewOptions() Options { return cluster.NewOptions() }

// MetricSet returns the full metric set of the paper (LABEL, BOW, PHI,
// ATTRIBUTE, IMPLICIT_ATT, SAME_TABLE).
func MetricSet() []Metric { return cluster.MetricSet() }

// MetricPrefix returns the first n metrics of the set (the ablation order
// of Table 7).
func MetricPrefix(n int) []Metric { return cluster.MetricPrefix(n) }

// Cluster partitions rows so that rows describing the same instance share
// a cluster (the one-shot form of the incremental clusterer the engine
// uses).
func Cluster(rows []*Row, scorer *Scorer, opts Options) *Clustering {
	return cluster.Cluster(rows, scorer, opts)
}
