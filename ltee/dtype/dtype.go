// Package dtype is the public surface of the typed-value model: the Value
// type carried by KB facts and fused entity descriptions, its
// constructors, and the similarity thresholds used when comparing values.
//
// Every identifier is a re-export of the internal implementation; the
// types are identical, so values flow freely between this package and the
// rest of the public ltee API. This package is part of the v1 stability
// contract (see package ltee).
package dtype

import (
	"repro/internal/dtype"
)

// Value is one typed value: a kind plus the raw string and its parsed
// forms.
type Value = dtype.Value

// Kind enumerates the value types of §2 (text, nominal, quantity, date,
// reference, ...).
type Kind = dtype.Kind

// Thresholds bundles the per-kind similarity thresholds used when two
// values are compared for agreement.
type Thresholds = dtype.Thresholds

// DefaultThresholds returns the thresholds of the paper's configuration.
func DefaultThresholds() Thresholds { return dtype.DefaultThresholds() }

// NewText returns a free-text value.
func NewText(s string) Value { return dtype.NewText(s) }

// NewNominal returns a nominal (categorical) value.
func NewNominal(s string) Value { return dtype.NewNominal(s) }

// NewNominalInt returns a nominal value from an integer code.
func NewNominalInt(n int) Value { return dtype.NewNominalInt(n) }

// NewRef returns a reference value (a link to another entity by label).
func NewRef(label string) Value { return dtype.NewRef(label) }

// NewQuantity returns a numeric quantity.
func NewQuantity(x float64) Value { return dtype.NewQuantity(x) }

// NewYear returns a year-granularity date.
func NewYear(y int) Value { return dtype.NewYear(y) }

// NewDate returns a day-granularity date.
func NewDate(y, m, d int) Value { return dtype.NewDate(y, m, d) }
