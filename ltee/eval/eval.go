// Package eval re-exports the paper's evaluation measures: the
// Hassanzadeh clustering scores, fact precision/recall, and new-instance
// detection metrics.
//
// This is a research-surface package: it exists so studies (see
// examples/songs, examples/football) can run on public imports only, and
// its surface may evolve with the internals (best-effort stability; not
// part of the v1 contract — see package ltee).
package eval

import (
	"repro/internal/eval"
)

// ClusterScores are the Hassanzadeh clustering quality measures (PCP, AR,
// and their F1).
type ClusterScores = eval.ClusterScores

// PRF is a precision/recall/F1 triple.
type PRF = eval.PRF

// DetectionScores summarize a new-detection evaluation.
type DetectionScores = eval.DetectionScores

// EvaluateClustering scores a produced clustering against gold clusters.
var EvaluateClustering = eval.EvaluateClustering

// FactAccuracy measures the fraction of produced facts agreeing with a
// truth oracle.
var FactAccuracy = eval.FactAccuracy
