package ltee_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoInternalImportsInPublicConsumers enforces the external-consumer
// guarantee: the root example, every example program, the binaries that
// claim to be built on the public API (ltee, ltee-serve, ltee-extract —
// ltee-bench legitimately reaches into internal/bench, the repo's
// benchmark corpus), and the user-facing docs must reference only the
// public ltee packages. If this test fails, one of them leaks a
// repro/internal import path — exactly what an external module could
// never compile against.
func TestNoInternalImportsInPublicConsumers(t *testing.T) {
	root := ".." // repo root, relative to the ltee package directory
	var targets []string
	for _, f := range []string{
		"example_test.go", "doc.go", "README.md",
		"cmd/ltee/main.go", "cmd/ltee-serve/main.go", "cmd/ltee-extract/main.go",
	} {
		targets = append(targets, filepath.Join(root, f))
	}
	err := filepath.WalkDir(filepath.Join(root, "examples"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			targets = append(targets, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range targets {
		body, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		for i, line := range strings.Split(string(body), "\n") {
			if strings.Contains(line, "repro/internal") {
				t.Errorf("%s:%d references an internal package: %s", path, i+1, strings.TrimSpace(line))
			}
		}
	}
}
