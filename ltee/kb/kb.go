// Package kb is the public surface of the knowledge-base substrate: a
// class hierarchy, typed properties, and instances with labels, abstracts,
// facts and popularity, safe for concurrent post-construction growth.
//
// Every identifier here is a re-export of the implementation in the
// repository's internal tree; the types are identical (Go type aliases),
// so values flow freely between this package and the rest of the public
// ltee API. This package is part of the v1 stability contract (see package
// ltee).
package kb

import (
	"repro/internal/kb"
)

// KB is the knowledge base. Construct with New (or take one from a
// scenario.Suite's world) and grow it with AddClass/AddInstance; reads,
// searches and growth may run concurrently.
type KB = kb.KB

// New returns an empty knowledge base with the default class hierarchy.
func New() *KB { return kb.New() }

// ClassID identifies an ontology class ("dbo:Song").
type ClassID = kb.ClassID

// PropertyID identifies a typed property ("dbo:weight").
type PropertyID = kb.PropertyID

// InstanceID identifies an instance in the KB.
type InstanceID = kb.InstanceID

// Instance is one knowledge-base entity: labels, facts, provenance.
type Instance = kb.Instance

// Property is one schema property of a class.
type Property = kb.Property

// Class is one ontology class.
type Class = kb.Class

// The evaluation classes of the paper, plus the confusable Place
// subclasses used as distractors.
const (
	ClassGFPlayer   = kb.ClassGFPlayer
	ClassSong       = kb.ClassSong
	ClassSettlement = kb.ClassSettlement
	ClassRegion     = kb.ClassRegion
	ClassMountain   = kb.ClassMountain
)

// ProvenanceIngest marks instances written back into the KB by the
// incremental ingestion engine (as opposed to seed instances).
const ProvenanceIngest = kb.ProvenanceIngest

// EvalClasses returns the paper's three evaluation classes.
func EvalClasses() []ClassID { return kb.EvalClasses() }

// ClassShortName maps a class ID to the paper's short name ("GF-Player").
func ClassShortName(id ClassID) string { return kb.ClassShortName(id) }

// CandidateOpts configures SearchInstances and Candidates.
type CandidateOpts = kb.CandidateOpts

// SearchHit is one scored retrieval result of KB.SearchInstances.
type SearchHit = kb.SearchHit

// Manifest describes a persisted KB snapshot (see KB.SaveSnapshot); its
// Segments field lists the append-only segment files of the chain.
type Manifest = kb.Manifest

// SegmentInfo describes one append-only snapshot segment of a Manifest.
type SegmentInfo = kb.SegmentInfo

// ErrNoSnapshot reports that a snapshot directory holds no manifest.
var ErrNoSnapshot = kb.ErrNoSnapshot

// ReadManifest reads a snapshot directory's manifest without loading the
// instance segments.
func ReadManifest(dir string) (Manifest, error) { return kb.ReadManifest(dir) }

// CompactSnapshot merges a snapshot directory's segment chain into a
// single segment. Crash-safe: the manifest is replaced only after the
// merged segment is durably written.
func CompactSnapshot(dir string) (Manifest, error) { return kb.CompactSnapshot(dir) }

// StorageStats and ClassStorage report the KB's columnar storage
// footprint (KB.StorageStats).
type (
	StorageStats = kb.StorageStats
	ClassStorage = kb.ClassStorage
)

// ClassProfile and PropertyProfile summarize a class for profiling
// (KB.ProfileClass, KB.ProfileProperties).
type (
	ClassProfile    = kb.ClassProfile
	PropertyProfile = kb.PropertyProfile
)
