// Package ltee is the public API of the long-tail entity extraction
// system: a reproduction of "Extending Cross-Domain Knowledge Bases with
// Long Tail Entities using Web Table Data" (Oulabi & Bizer, EDBT 2019)
// grown into an incremental, servable engine.
//
// # The v1 contract
//
// This package and its subpackages under ltee/ are the importable surface
// of the repository; everything under internal/ is implementation and can
// change without notice. Within a major API version (APIVersion) the
// exported identifiers of ltee, ltee/kb, ltee/webtable, ltee/dtype,
// ltee/scenario and ltee/serve are stable: existing signatures keep
// compiling and behavior changes only in documented, compatible ways. The
// remaining subpackages (ltee/cluster, ltee/agg, ltee/newdet, ltee/strsim,
// ltee/eval) re-export research internals for experimentation and carry no
// stability promise beyond best effort. A generated listing of the whole
// exported surface is checked in under ltee/testdata and guarded by a test,
// so no breaking change lands unreviewed.
//
// # Construction
//
// Engines and pipelines are built from a knowledge base, a corpus, and a
// class, configured with functional options instead of a positional config
// struct:
//
//	eng, err := ltee.NewEngine(k, corpus, kb.ClassSong,
//		ltee.WithWorkers(8),
//		ltee.WithDedup(),
//		ltee.WithProgress(func(ev ltee.Event) { log.Println(ev.Stage) }),
//	)
//
// Pipeline (one-shot, side-effect free) and Engine (incremental, writes
// discoveries back into the KB) share one implementation; see their method
// docs for the semantics.
//
// # Cancellation
//
// Every long-running entry point takes a context.Context and honors it
// cooperatively: Engine.Ingest, Pipeline.Run and ClassifyTables check for
// cancellation at every stage boundary, inside the per-table and
// per-entity fan-outs, and between clustering batches and refinement
// rounds. A cancelled Ingest commits nothing — the engine's published
// state and the knowledge base are exactly as before the call, and
// re-issuing the same batch later behaves as if the cancelled call never
// happened. The serving layer (ltee/serve) exposes the same mechanism over
// HTTP as DELETE /v1/jobs/{id} and a deadline-bounded Server.Shutdown.
package ltee

import (
	"context"

	"repro/internal/core"
	"repro/internal/fusion"
	"repro/internal/newdet"

	"repro/ltee/kb"
	"repro/ltee/webtable"
)

// APIVersion names the major version of the public API's stability
// contract.
const APIVersion = "v1"

// Engine is the long-lived incremental ingestion engine for one class:
// Ingest accepts table batches over time, retains the clustering and
// matching state between batches, and writes entities detected as new back
// into the knowledge base so later batches match against them.
//
// Engine is a transparent alias of the implementation type, so its Cfg
// and WriteBack fields are reachable directly. They are an advanced
// escape hatch: mutating them after construction bypasses the eager
// validation the options perform (the constructor-error guarantee covers
// NewEngine/NewPipeline/ClassifyTables arguments only) and must not race
// an in-flight Ingest. Prefer expressing configuration through Options.
type Engine = core.Engine

// Pipeline executes the paper's one-shot batch setting: Run processes a
// set of tables through the configured iterations and leaves the knowledge
// base untouched.
type Pipeline = core.Pipeline

// Output is the result of a pipeline run or ingest epoch: the final
// mapping, rows, clustering, fused entities and their detections.
type Output = core.Output

// Models bundles the learned pipeline components; the zero value selects
// unlearned uniform-weight defaults (fine for clean tables, see
// scenario.Suite.ModelsFor for training on the synthetic gold standard).
type Models = core.Models

// IngestStats summarizes one ingest epoch.
type IngestStats = core.IngestStats

// Event is one progress notification delivered to a WithProgress callback.
type Event = core.Event

// Stage names the pipeline stage an Event reports.
type Stage = core.Stage

// The stages reported by progress events, in epoch order.
const (
	StageClassify  = core.StageClassify
	StageMatch     = core.StageMatch
	StageBuild     = core.StageBuild
	StageCluster   = core.StageCluster
	StageFuse      = core.StageFuse
	StageDetect    = core.StageDetect
	StageWriteBack = core.StageWriteBack
	StageTrain     = core.StageTrain
)

// Entity is one fused entity description produced by the pipeline.
type Entity = fusion.Entity

// Detection is the new-detection verdict for one entity.
type Detection = newdet.Result

// ScoringMethod selects how candidate fact values are scored during
// fusion.
type ScoringMethod = fusion.ScoringMethod

// DedupConfig tunes the post-clustering entity deduplication enabled by
// WithDedup; the zero value is the default configuration.
type DedupConfig = fusion.DedupConfig

// Voting is the default fusion scoring method (every candidate value
// scores 1).
const Voting = fusion.Voting

// NewEngine builds an incremental ingestion engine for one class with
// write-back enabled (use WithWriteBack(false) for a side-effect-free
// engine). The knowledge base and corpus must be non-nil and the class
// must exist in the KB's ontology.
func NewEngine(k *kb.KB, corpus *webtable.Corpus, class kb.ClassID, opts ...Option) (*Engine, error) {
	cfg, err := buildConfig(k, corpus, class, opts)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(cfg.core, cfg.models)
	eng.WriteBack = cfg.writeBack
	return eng, nil
}

// NewPipeline builds a one-shot pipeline for one class. Pipelines never
// write back into the knowledge base, so WithWriteBack is rejected here.
func NewPipeline(k *kb.KB, corpus *webtable.Corpus, class kb.ClassID, opts ...Option) (*Pipeline, error) {
	cfg, err := buildConfig(k, corpus, class, opts)
	if err != nil {
		return nil, err
	}
	if cfg.writeBackSet {
		return nil, errWriteBackPipeline
	}
	return core.New(cfg.core, cfg.models), nil
}

// ClassifyTables runs data-type detection, label-attribute detection and
// table-to-class matching over the whole corpus and returns the table IDs
// matched to each class — the step that decides which tables feed which
// engine. It honors WithWorkers, WithMinClassRowFrac and WithProgress;
// other options are rejected. Cancelling ctx stops the fan-out between
// tables.
func ClassifyTables(ctx context.Context, k *kb.KB, corpus *webtable.Corpus, opts ...Option) (map[kb.ClassID][]int, error) {
	cfg, err := buildClassifyConfig(k, corpus, opts)
	if err != nil {
		return nil, err
	}
	if cfg.core.Progress != nil {
		cfg.core.Progress(Event{Stage: StageClassify, Count: corpus.Len()})
	}
	return core.ClassifyTables(ctx, k, corpus, cfg.core.MinClassRowFrac, cfg.core.Workers)
}
