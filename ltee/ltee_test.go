package ltee_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/ltee"
	"repro/ltee/dtype"
	"repro/ltee/kb"
	"repro/ltee/webtable"
)

// tinyFixture is a two-table micro-world shared by the facade tests.
func tinyFixture() (*kb.KB, *webtable.Corpus) {
	k := kb.New()
	k.AddInstance(&kb.Instance{
		Class:  kb.ClassGFPlayer,
		Labels: []string{"Tom Brady"},
		Facts: map[kb.PropertyID]dtype.Value{
			"dbo:position": dtype.NewNominal("QB"),
			"dbo:weight":   dtype.NewQuantity(225),
		},
		Popularity: 100,
	})
	corpus := webtable.NewCorpus([]*webtable.Table{
		{
			LabelCol: -1,
			Headers:  []string{"Player", "Position", "Weight"},
			Cells: [][]string{
				{"Tom Brady", "QB", "225"},
				{"Ulysses Drake", "TE", "250"},
			},
		},
		{
			LabelCol: -1,
			Headers:  []string{"Name", "Pos"},
			Cells: [][]string{
				{"Ulysses Drake", "TE"},
				{"Tom Brady", "QB"},
			},
		},
	})
	return k, corpus
}

// TestFacadeEndToEnd: the public construction path — ClassifyTables plus
// NewPipeline/NewEngine with options — runs the tiny scenario end to end
// and the engine's single batch equals the pipeline run.
func TestFacadeEndToEnd(t *testing.T) {
	k, corpus := tinyFixture()
	ctx := context.Background()

	byClass, err := ltee.ClassifyTables(ctx, k, corpus, ltee.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	tables := byClass[kb.ClassGFPlayer]
	if len(tables) != 2 {
		t.Fatalf("classified tables = %v", byClass)
	}

	p, err := ltee.NewPipeline(k, corpus, kb.ClassGFPlayer, ltee.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Run(ctx, tables)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Entities) != 2 {
		t.Fatalf("entities = %d, want 2", len(want.Entities))
	}

	var events []ltee.Event
	eng, err := ltee.NewEngine(k, corpus, kb.ClassGFPlayer,
		ltee.WithWorkers(1),
		ltee.WithWriteBack(false),
		ltee.WithProgress(func(ev ltee.Event) { events = append(events, ev) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := eng.Ingest(ctx, tables)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WrittenBack != 0 {
		t.Errorf("WithWriteBack(false) engine wrote %d instances", stats.WrittenBack)
	}
	if !reflect.DeepEqual(want.Mapping, got.Mapping) || len(want.Entities) != len(got.Entities) {
		t.Error("engine batch diverged from pipeline run")
	}
	if len(events) == 0 {
		t.Error("WithProgress callback never fired")
	}
}

// TestOptionValidation: every nonsense option value surfaces as a
// constructor error naming the option.
func TestOptionValidation(t *testing.T) {
	k, corpus := tinyFixture()
	cases := []struct {
		name string
		opt  ltee.Option
		want string
	}{
		{"workers", ltee.WithWorkers(-1), "WithWorkers(-1)"},
		{"iterations", ltee.WithIterations(0), "WithIterations(0)"},
		{"minfrac-zero", ltee.WithMinClassRowFrac(0), "WithMinClassRowFrac(0)"},
		{"minfrac-big", ltee.WithMinClassRowFrac(1.5), "WithMinClassRowFrac(1.5)"},
		{"progress-nil", ltee.WithProgress(nil), "WithProgress(nil)"},
		{"cluster-workers", ltee.WithClusterOptions(ltee.ClusterOptions{Workers: -2}), "Workers -2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ltee.NewEngine(k, corpus, kb.ClassGFPlayer, tc.opt)
			if err == nil {
				t.Fatalf("NewEngine accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the option (%q)", err, tc.want)
			}
		})
	}

	if _, err := ltee.NewEngine(nil, corpus, kb.ClassGFPlayer); err == nil {
		t.Error("nil KB accepted")
	}
	if _, err := ltee.NewEngine(k, nil, kb.ClassGFPlayer); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := ltee.NewEngine(k, corpus, "dbo:Nope"); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := ltee.NewPipeline(k, corpus, kb.ClassGFPlayer, ltee.WithWriteBack(true)); err == nil {
		t.Error("NewPipeline accepted WithWriteBack")
	}
	if _, err := ltee.ClassifyTables(context.Background(), k, corpus, ltee.WithIterations(3)); err == nil {
		t.Error("ClassifyTables accepted WithIterations")
	}
}

// TestFacadeCancellation: the public Ingest honors context cancellation
// with the documented no-commit semantics.
func TestFacadeCancellation(t *testing.T) {
	k, corpus := tinyFixture()
	tables := []int{0, 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng, err := ltee.NewEngine(k, corpus, kb.ClassGFPlayer, ltee.WithWriteBack(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Ingest(ctx, tables); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if eng.Epoch() != 0 {
		t.Error("cancelled ingest committed an epoch")
	}
	out, _, err := eng.Ingest(context.Background(), tables)
	if err != nil || len(out.Entities) == 0 {
		t.Fatalf("retry failed: %v", err)
	}
}
