// Package newdet re-exports the new-detection classifier: deciding, for a
// fused entity, whether it matches an existing KB instance or describes a
// formerly unknown long-tail entity.
//
// This is a research-surface package with best-effort stability; it is not
// part of the v1 contract (see package ltee).
package newdet

import (
	"repro/internal/agg"
	"repro/internal/kb"
	"repro/internal/newdet"
)

// Detector classifies entities as new or existing against a knowledge
// base.
type Detector = newdet.Detector

// Result is one classification verdict (also aliased as ltee.Detection).
type Result = newdet.Result

// Env carries the comparison environment of the entity-to-instance
// metrics.
type Env = newdet.Env

// Metric is one entity-to-instance similarity metric.
type Metric = newdet.Metric

// NewDetector builds a detector over the KB with the given aggregator.
func NewDetector(k *kb.KB, aggr agg.Aggregator) *Detector {
	return newdet.NewDetector(k, aggr)
}

// MetricSet returns the full entity-to-instance metric set of the paper.
func MetricSet() []Metric { return newdet.MetricSet() }
