package ltee

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"

	"repro/ltee/kb"
	"repro/ltee/webtable"
)

// Option configures NewEngine, NewPipeline or ClassifyTables. Options
// validate eagerly: an out-of-range value surfaces as a constructor error
// naming the option, never as silent misbehavior at run time.
type Option func(*config) error

// ClusterOptions configures the row clustering algorithms (see
// WithClusterOptions). The zero value is NOT the default configuration:
// it disables label blocking and KLj refinement (both on by default).
// Start from NewClusterOptions and tweak individual fields.
type ClusterOptions = cluster.Options

// NewClusterOptions returns the default clustering options: parallel
// greedy assignment with label blocking and KLj refinement. Tweak fields
// on the returned value and pass it to WithClusterOptions.
func NewClusterOptions() ClusterOptions { return cluster.NewOptions() }

// config accumulates the applied options on top of the defaults.
type config struct {
	core         core.Config
	models       Models
	writeBack    bool
	writeBackSet bool
	// classify marks the ClassifyTables context, which accepts only the
	// subset of options that affect table-to-class matching.
	classify bool
}

var errWriteBackPipeline = errors.New("ltee: WithWriteBack does not apply to NewPipeline (pipelines never write back)")

// buildConfig applies opts over the default two-iteration configuration.
func buildConfig(k *kb.KB, corpus *webtable.Corpus, class kb.ClassID, opts []Option) (*config, error) {
	if k == nil {
		return nil, errors.New("ltee: knowledge base must not be nil")
	}
	if corpus == nil {
		return nil, errors.New("ltee: corpus must not be nil")
	}
	if k.Class(class) == nil {
		return nil, fmt.Errorf("ltee: class %q does not exist in the knowledge base", class)
	}
	cfg := &config{core: core.DefaultConfig(k, corpus, class), writeBack: true}
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// buildClassifyConfig applies the ClassifyTables-compatible subset of opts.
func buildClassifyConfig(k *kb.KB, corpus *webtable.Corpus, opts []Option) (*config, error) {
	if k == nil {
		return nil, errors.New("ltee: knowledge base must not be nil")
	}
	if corpus == nil {
		return nil, errors.New("ltee: corpus must not be nil")
	}
	cfg := &config{core: core.Config{MinClassRowFrac: 0.3}, classify: true}
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// classifyOnly guards options that have no effect on ClassifyTables.
func classifyOnly(cfg *config, name string) error {
	if cfg.classify {
		return fmt.Errorf("ltee: %s does not apply to ClassifyTables", name)
	}
	return nil
}

// WithWorkers bounds every worker pool of the run: the per-table matching
// and per-entity detection fan-outs and the clustering batches. 0 (the
// default) uses one worker per CPU, 1 runs fully serial; output is
// identical at every worker count. Negative values are rejected.
func WithWorkers(n int) Option {
	return func(cfg *config) error {
		if n < 0 {
			return fmt.Errorf("ltee: WithWorkers(%d): worker count must be >= 0 (0 = one per CPU, 1 = serial)", n)
		}
		cfg.core.Workers = n
		return nil
	}
}

// WithIterations sets the number of pipeline iterations per run or ingest
// epoch (default 2; the paper found a third iteration adds nothing).
func WithIterations(n int) Option {
	return func(cfg *config) error {
		if err := classifyOnly(cfg, "WithIterations"); err != nil {
			return err
		}
		if n < 1 {
			return fmt.Errorf("ltee: WithIterations(%d): at least one iteration is required", n)
		}
		cfg.core.Iterations = n
		return nil
	}
}

// WithSeed sets the seed driving every learned component (default 1).
func WithSeed(seed int64) Option {
	return func(cfg *config) error {
		if err := classifyOnly(cfg, "WithSeed"); err != nil {
			return err
		}
		cfg.core.Seed = seed
		return nil
	}
}

// WithScoring selects the fusion value-scoring method (default Voting).
func WithScoring(m ScoringMethod) Option {
	return func(cfg *config) error {
		if err := classifyOnly(cfg, "WithScoring"); err != nil {
			return err
		}
		cfg.core.Scoring = m
		return nil
	}
}

// WithMinClassRowFrac sets the minimum fraction of rows with a KB
// candidate for a table to be matched to a class (default 0.3). Must be in
// (0, 1].
func WithMinClassRowFrac(f float64) Option {
	return func(cfg *config) error {
		if f <= 0 || f > 1 {
			return fmt.Errorf("ltee: WithMinClassRowFrac(%g): fraction must be in (0, 1]", f)
		}
		cfg.core.MinClassRowFrac = f
		return nil
	}
}

// WithDedup enables the post-clustering entity deduplication extension
// (§5 lessons learned) with its default configuration; pass a DedupConfig
// to tune it. More than one config is rejected.
func WithDedup(dc ...DedupConfig) Option {
	return func(cfg *config) error {
		if err := classifyOnly(cfg, "WithDedup"); err != nil {
			return err
		}
		if len(dc) > 1 {
			return fmt.Errorf("ltee: WithDedup: at most one DedupConfig (got %d)", len(dc))
		}
		cfg.core.Dedup = true
		if len(dc) == 1 {
			cfg.core.DedupConfig = dc[0]
		}
		return nil
	}
}

// WithClusterOptions replaces the row clustering options wholesale. Build
// the value with NewClusterOptions and modify fields from there — a zero
// ClusterOptions silently turns off blocking and KLj refinement, which is
// almost never what you want.
func WithClusterOptions(o ClusterOptions) Option {
	return func(cfg *config) error {
		if err := classifyOnly(cfg, "WithClusterOptions"); err != nil {
			return err
		}
		if o.Workers < 0 {
			return fmt.Errorf("ltee: WithClusterOptions: Workers %d must be >= 0", o.Workers)
		}
		if o.BatchSize < 0 {
			return fmt.Errorf("ltee: WithClusterOptions: BatchSize %d must be >= 0", o.BatchSize)
		}
		if o.MaxKLjRounds < 0 {
			return fmt.Errorf("ltee: WithClusterOptions: MaxKLjRounds %d must be >= 0", o.MaxKLjRounds)
		}
		cfg.core.ClusterOpts = o
		return nil
	}
}

// WithModels supplies trained pipeline models (scenario.Suite.ModelsFor
// trains them on the synthetic gold standard). Without this option the
// unlearned uniform-weight defaults are used.
func WithModels(m Models) Option {
	return func(cfg *config) error {
		if err := classifyOnly(cfg, "WithModels"); err != nil {
			return err
		}
		cfg.models = m
		return nil
	}
}

// WithWriteBack controls whether an engine writes entities detected as new
// back into the knowledge base after each epoch (default true). Only valid
// for NewEngine.
func WithWriteBack(on bool) Option {
	return func(cfg *config) error {
		if err := classifyOnly(cfg, "WithWriteBack"); err != nil {
			return err
		}
		cfg.writeBack = on
		cfg.writeBackSet = true
		return nil
	}
}

// WithProgress registers a callback receiving an Event at the start of
// every pipeline stage. The callback runs on the pipeline goroutine: it
// must be fast, must not call back into the engine, and never affects the
// output.
func WithProgress(fn func(Event)) Option {
	return func(cfg *config) error {
		if fn == nil {
			return errors.New("ltee: WithProgress(nil): callback must not be nil")
		}
		cfg.core.Progress = fn
		return nil
	}
}
