// Package scenario is the public surface of the reproduction harness: a
// deterministic synthetic world (knowledge base + long-tail entities), a
// synthesized web-table corpus over it, per-class gold standards, and the
// cached trained models and pipeline runs behind every evaluation table of
// the paper.
//
// A Suite is the quickest route to a fully wired system:
//
//	s := scenario.NewSuite(scenario.Options{WorldScale: 0.25, CorpusScale: 0.15, Seed: 42})
//	out, err := s.FullRun(ctx, kb.ClassGFPlayer)   // trained models, whole corpus
//	models, err := s.ModelsFor(ctx, kb.ClassSong)  // feed ltee.WithModels
//	byClass, err := s.TablesByClass(ctx)           // feed Engine.Ingest
//
// Every identifier is a re-export of the internal implementation; the
// types are identical, so Suite outputs flow directly into the ltee
// constructors. This package is part of the v1 stability contract (see
// package ltee).
package scenario

import (
	"repro/internal/report"
)

// Suite bundles the synthetic world, corpus and per-class gold standards,
// caching trained models and pipeline runs across uses. All methods are
// safe for concurrent use; distinct classes train and run concurrently.
type Suite = report.Suite

// Options sizes a Suite: world scale (entity counts), corpus scale (table
// counts), the generation/learning seed, and the worker pool bound.
type Options = report.Options

// TextTable is a rendered evaluation table (Suite.Table1 ... Table13).
type TextTable = report.TextTable

// NewSuite generates the world, corpus and gold standards.
func NewSuite(opts Options) *Suite { return report.NewSuite(opts) }

// DefaultOptions returns the laptop-scale defaults used by the CLI and the
// benchmarks.
func DefaultOptions() Options { return report.DefaultOptions() }
