// Package serve is the public surface of the HTTP serving layer: a
// long-running KB query/ingest server over one incremental engine per
// class — entity lookup, fuzzy label search, per-class statistics, async
// ingestion jobs with cancellation (DELETE /v1/jobs/{id}), dependencies
// ("after"), durable job records (GET /v1/jobs?status=interrupted after a
// crash), and snapshot persistence with warm starts. Each served class has
// its own writer lane; a full lane rejects with 429 and a Retry-After
// header.
//
// Every identifier is a re-export of the internal implementation; the
// types are identical, so engines built with ltee.NewEngine plug straight
// into Config.Engines. This package is part of the v1 stability contract
// (see package ltee).
package serve

import (
	"repro/internal/serve"
)

// Config assembles a server over a live KB, its corpus, and one engine per
// served class.
type Config = serve.Config

// Server is the HTTP serving layer. Construct with New, expose via
// Handler, stop with Shutdown (deadline-bounded) or Close (full drain).
type Server = serve.Server

// JobView is the JSON rendering of an async job (GET /v1/jobs/{id}).
type JobView = serve.JobView

// JobsView is the GET /v1/jobs listing response; JobInputsView carries an
// unfinished job's resubmittable inputs inside its JobView.
type (
	JobsView      = serve.JobsView
	JobInputsView = serve.JobInputsView
)

// The JSON view types of the read endpoints.
type (
	ClassView         = serve.ClassView
	EntitiesView      = serve.EntitiesView
	EntityView        = serve.EntityView
	FactView          = serve.FactView
	InstanceView      = serve.InstanceView
	SearchView        = serve.SearchView
	SearchHitView     = serve.SearchHitView
	StatsView         = serve.StatsView
	ClassStatsView    = serve.ClassStatsView
	CacheStatsView    = serve.CacheStatsView
	EndpointStatsView = serve.EndpointStatsView
	QueueStatsView    = serve.QueueStatsView
)

// The request types of the write endpoints.
type (
	IngestRequest   = serve.IngestRequest
	RawTable        = serve.RawTable
	SnapshotRequest = serve.SnapshotRequest
)

// New builds a server, warm-starts from the snapshot directory when one is
// configured (reloading the job journal so interrupted work is queryable),
// and starts one writer loop per served class.
func New(cfg Config) (*Server, error) { return serve.New(cfg) }
