// Package strsim re-exports the string-similarity kernel the whole
// pipeline bottoms out in: normalization, tokenization, term vectors, and
// the Levenshtein / Monge-Elkan similarities.
//
// This is a research-surface package with best-effort stability; it is not
// part of the v1 contract (see package ltee).
package strsim

import (
	"repro/internal/strsim"
)

// Normalize lower-cases, strips diacritics and collapses whitespace.
var Normalize = strsim.Normalize

// Tokens splits a label into normalized tokens.
var Tokens = strsim.Tokens

// BinaryTermVector builds a binary bag-of-words vector over the tokens of
// the given strings.
var BinaryTermVector = strsim.BinaryTermVector

// LevenshteinSim is the normalized Levenshtein similarity in [0, 1].
var LevenshteinSim = strsim.LevenshteinSim

// MongeElkanSym is the symmetric Monge-Elkan token-set similarity.
var MongeElkanSym = strsim.MongeElkanSym
