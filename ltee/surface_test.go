package ltee_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateSurface = flag.Bool("update", false, "rewrite testdata/api_surface.txt from the current source")

// surfaceFile is the checked-in golden listing of the public API surface.
const surfaceFile = "testdata/api_surface.txt"

// TestPublicAPISurface is the breaking-change gate: the exported surface
// of repro/ltee and every subpackage — package-level identifiers with
// their signatures, plus the exported method sets and struct fields of
// every aliased implementation type — is generated from the source and
// compared against the checked-in golden listing. A PR that adds, renames,
// removes or re-signs an exported identifier must regenerate the file
// (go test ./ltee -run TestPublicAPISurface -update) and have the diff
// reviewed; CI fails on an unreviewed mismatch.
func TestPublicAPISurface(t *testing.T) {
	got := strings.Join(currentSurface(t), "\n") + "\n"
	if *updateSurface {
		if err := os.MkdirAll(filepath.Dir(surfaceFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(surfaceFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", surfaceFile)
		return
	}
	wantBytes, err := os.ReadFile(surfaceFile)
	if err != nil {
		t.Fatalf("missing golden surface listing (run with -update to create): %v", err)
	}
	want := string(wantBytes)
	if got != want {
		t.Errorf("public API surface changed.\nIf the change is intentional and reviewed, regenerate with:\n  go test ./ltee -run TestPublicAPISurface -update\n\n%s", surfaceDiff(want, got))
	}
}

// surfaceGen walks the ltee packages and expands alias targets into the
// internal packages they re-export.
type surfaceGen struct {
	t *testing.T
	// pkgCache caches parsed package directories (repo-relative path ->
	// fileset + files).
	pkgCache map[string]*parsedPkg
	lines    []string
}

type parsedPkg struct {
	fset  *token.FileSet
	files []*ast.File
}

func currentSurface(t *testing.T) []string {
	t.Helper()
	g := &surfaceGen{t: t, pkgCache: map[string]*parsedPkg{}}
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if d.Name() == "testdata" {
			return filepath.SkipDir
		}
		pkgPath := "ltee"
		if path != "." {
			pkgPath = "ltee/" + filepath.ToSlash(path)
		}
		g.walkPackage(pkgPath, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(g.lines)
	// Dedup (a type aliased twice, e.g. via two packages, lists once).
	out := g.lines[:0]
	for i, l := range g.lines {
		if i == 0 || l != g.lines[i-1] {
			out = append(out, l)
		}
	}
	return out
}

// walkPackage records the exported surface of one ltee package directory.
func (g *surfaceGen) walkPackage(pkgPath, dir string) {
	p := g.parseDir(dir)
	for _, f := range p.files {
		imports := importMap(f)
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && ast.IsExported(d.Name.Name) {
					g.add("%s func %s %s", pkgPath, d.Name.Name, exprString(p.fset, d.Type))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !ast.IsExported(sp.Name.Name) {
							continue
						}
						g.add("%s type %s", pkgPath, sp.Name.Name)
						g.expandAlias(pkgPath, sp, imports)
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, name := range sp.Names {
							if ast.IsExported(name.Name) {
								g.add("%s %s %s", pkgPath, kind, name.Name)
							}
						}
					}
				}
			}
		}
	}
}

// expandAlias resolves `type X = pkg.Y` to the implementation package and
// records Y's exported methods and struct fields under X — they ARE the
// public surface of the alias, and a silent signature change there is a
// breaking change of the public API.
func (g *surfaceGen) expandAlias(pkgPath string, sp *ast.TypeSpec, imports map[string]string) {
	if !sp.Assign.IsValid() {
		return // a defined type, not an alias; its own decls are walked
	}
	sel, ok := sp.Type.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	dir, ok := repoDir(imports[pkgIdent.Name])
	if !ok {
		return
	}
	target := g.parseDir(dir)
	targetName := sel.Sel.Name
	for _, f := range target.files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil && ast.IsExported(d.Name.Name) && receiverName(d) == targetName {
					g.add("%s type %s method %s %s", pkgPath, sp.Name.Name, d.Name.Name, exprString(target.fset, d.Type))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != targetName {
						continue
					}
					switch tt := ts.Type.(type) {
					case *ast.StructType:
						for _, field := range tt.Fields.List {
							for _, name := range field.Names {
								if ast.IsExported(name.Name) {
									g.add("%s type %s field %s %s", pkgPath, sp.Name.Name, name.Name, exprString(target.fset, field.Type))
								}
							}
						}
					case *ast.InterfaceType:
						for _, m := range tt.Methods.List {
							for _, name := range m.Names {
								if ast.IsExported(name.Name) {
									g.add("%s type %s method %s %s", pkgPath, sp.Name.Name, name.Name, exprString(target.fset, m.Type))
								}
							}
						}
					}
				}
			}
		}
	}
}

// repoDir maps a repro/... import path to a directory relative to the
// ltee package (the test's working directory).
func repoDir(importPath string) (string, bool) {
	switch {
	case strings.HasPrefix(importPath, "repro/internal/"):
		return filepath.Join("..", filepath.FromSlash(strings.TrimPrefix(importPath, "repro/"))), true
	case strings.HasPrefix(importPath, "repro/ltee/"):
		return filepath.FromSlash(strings.TrimPrefix(importPath, "repro/ltee/")), true
	default:
		return "", false
	}
}

func (g *surfaceGen) parseDir(dir string) *parsedPkg {
	if p, ok := g.pkgCache[dir]; ok {
		return p
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		g.t.Fatalf("parsing %s: %v", dir, err)
	}
	p := &parsedPkg{fset: fset}
	// Deterministic package and file order (both are maps).
	pkgNames := make([]string, 0, len(pkgs))
	for name := range pkgs {
		pkgNames = append(pkgNames, name)
	}
	sort.Strings(pkgNames)
	for _, pkgName := range pkgNames {
		pkg := pkgs[pkgName]
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			p.files = append(p.files, pkg.Files[name])
		}
	}
	g.pkgCache[dir] = p
	return p
}

func (g *surfaceGen) add(format string, args ...any) {
	g.lines = append(g.lines, fmt.Sprintf(format, args...))
}

// importMap maps local package names to import paths for one file.
func importMap(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out[name] = path
	}
	return out
}

// receiverName returns the base type name of a method's receiver.
func receiverName(d *ast.FuncDecl) string {
	if len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// exprString renders a type expression (or signature) as source text.
func exprString(fset *token.FileSet, expr ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, expr); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// surfaceDiff renders a sorted line diff of the two listings.
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	var removed, added []string
	for l := range wantSet {
		if !gotSet[l] {
			removed = append(removed, l)
		}
	}
	for l := range gotSet {
		if !wantSet[l] {
			added = append(added, l)
		}
	}
	sort.Strings(removed)
	sort.Strings(added)
	var b strings.Builder
	for _, l := range removed {
		fmt.Fprintf(&b, "  removed: %s\n", l)
	}
	for _, l := range added {
		fmt.Fprintf(&b, "  added:   %s\n", l)
	}
	out := b.String()
	if out == "" {
		out = "  (ordering or formatting difference)\n"
	}
	return out
}
