// Package webtable is the public surface of the web-table model: the
// relational Table/Corpus types the pipeline consumes, the from-scratch
// HTML table extractor, and the WDC JSON corpus format.
//
// Every identifier is a re-export (type alias or thin wrapper) of the
// internal implementation; the types are identical, so values flow freely
// between this package and the rest of the public ltee API. This package
// is part of the v1 stability contract (see package ltee).
package webtable

import (
	"io"

	"repro/internal/webtable"
)

// Table is one relational web table: headers, cells, an optional caption
// and label column (-1 lets the pipeline's detection decide).
type Table = webtable.Table

// Corpus is an ordered collection of tables addressed by ID.
type Corpus = webtable.Corpus

// RowRef addresses one row of one corpus table.
type RowRef = webtable.RowRef

// CorpusStats summarizes a corpus (Corpus.Stats).
type CorpusStats = webtable.CorpusStats

// Provenance records where a table was extracted from.
type Provenance = webtable.Provenance

// NewCorpus builds a corpus from tables, assigning sequential IDs.
func NewCorpus(tables []*Table) *Corpus { return webtable.NewCorpus(tables) }

// ExtractHTML parses raw HTML and returns every relational table found,
// rejecting layout tables, header-less tables and tables with fewer than
// two columns.
func ExtractHTML(html string) []*Table { return webtable.ExtractHTML(html) }

// ReadWDC reads a corpus in the WDC JSON-lines format.
func ReadWDC(r io.Reader) (*Corpus, error) { return webtable.ReadWDC(r) }

// WriteWDC writes the corpus in the WDC JSON-lines format.
func WriteWDC(w io.Writer, c *Corpus) error { return webtable.WriteWDC(w, c) }
